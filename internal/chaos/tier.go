package chaos

import (
	"context"
	"fmt"
	"time"

	"godpm/internal/engine"
	"godpm/internal/workload"
)

// Tier wraps an engine.Cache with a deterministic fault schedule. This
// seam carries whole records, not raw bytes, so faults map onto the
// Cache contract's only two failure shapes: a faulted Get is a miss, a
// faulted Put returns an error. Corrupt/torn decisions degrade to the
// same — fabricating a corrupted *engine.Record here would poison
// callers by construction, which is exactly the bug class the
// byte-level seams (RoundTripper, FaultFS) exist to exercise instead.
//
// Gets and Puts draw from independent schedules (independent seed
// splits), so the mix of operations does not perturb either stream.
type Tier struct {
	inner engine.Cache
	get   *Injector
	put   *Injector
}

// NewTier wraps inner with the spec's fault schedule rooted at seed.
func NewTier(inner engine.Cache, seed workload.Seed, spec Spec) *Tier {
	return &Tier{
		inner: inner,
		get:   NewInjector(seed.Split("get"), spec),
		put:   NewInjector(seed.Split("put"), spec),
	}
}

// Get applies the schedule, then delegates. Faulted Gets are misses —
// the tier contract has no way to say more, and the engine must treat
// any tier failure as "simulate it yourself".
func (t *Tier) Get(key string) (*engine.Record, bool) {
	d := t.get.Next()
	if d.Latency > 0 {
		time.Sleep(d.Latency)
	}
	if d.Fault != FaultNone {
		return nil, false
	}
	return t.inner.Get(key)
}

// Put applies the schedule, then delegates. Faulted Puts error without
// touching the inner cache (the entry is simply not stored — a lost
// replication opportunity, which callers must already tolerate).
func (t *Tier) Put(key string, rec *engine.Record) error {
	d := t.put.Next()
	if d.Latency > 0 {
		time.Sleep(d.Latency)
	}
	if d.Fault != FaultNone {
		return fmt.Errorf("chaos: put %s: %w", d.Fault, ErrInjected)
	}
	return t.inner.Put(key, rec)
}

// GetStats and PutStats snapshot the two schedules' counters, which an
// invariant suite reconciles against the wrapped tier's own stats.
func (t *Tier) GetStats() InjectorStats { return t.get.Stats() }
func (t *Tier) PutStats() InjectorStats { return t.put.Stats() }

// Has forwards the side-effect-free probe when the inner cache offers
// it. Probes are not faulted: Has is an optimisation seam, and a false
// negative here would only change *where* a lookup happens, adding
// schedule noise without exercising any failure contract.
func (t *Tier) Has(key string) bool {
	if h, ok := t.inner.(interface{ Has(string) bool }); ok {
		return h.Has(key)
	}
	return false
}

// Warm forwards plan warm-up when the inner cache supports it.
func (t *Tier) Warm(ctx context.Context, keys []string) int {
	if w, ok := t.inner.(engine.Warmer); ok {
		return w.Warm(ctx, keys)
	}
	return 0
}

// CacheStats forwards the inner cache's occupancy.
func (t *Tier) CacheStats() engine.CacheStats {
	if r, ok := t.inner.(engine.StatsReporter); ok {
		return r.CacheStats()
	}
	return engine.CacheStats{}
}

// TierStats forwards the inner cache's per-tier counters, so wrapping a
// cache in chaos does not blind the stats surface being tested.
func (t *Tier) TierStats() []engine.TierStats {
	if r, ok := t.inner.(engine.TierStatsReporter); ok {
		return r.TierStats()
	}
	return nil
}
