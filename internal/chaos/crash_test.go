package chaos

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"godpm/internal/engine"
	"godpm/internal/soc"
	"godpm/internal/workload"
)

func mustRec(t *testing.T, key string, r *soc.Result) *engine.Record {
	t.Helper()
	rec, err := engine.NewRecord(key, r)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func mustPut(t *testing.T, dir, key string, r *soc.Result, sync bool) {
	t.Helper()
	d, err := engine.NewDiskWith(dir, engine.DiskOptions{Sync: sync})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(key, mustRec(t, key, r)); err != nil {
		t.Fatal(err)
	}
}

// reopenGet reopens the cache directory fresh (recovery: temp sweep +
// corrupt-entry healing on Get) and probes the slot.
func reopenGet(t *testing.T, dir, key string) (*engine.Record, bool) {
	t.Helper()
	d, err := engine.NewDiskWith(dir, engine.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return d.Get(key)
}

// TestDiskCrashPointRecovery kills a Disk.Put at every filesystem
// operation it performs (and once right after it returned — the power
// loss the process never sees), then reopens the directory and proves
// the slot is the old value, the new value, or healably absent. With
// DiskOptions.Sync the guarantee tightens: a slot that held a value is
// never absent and never torn — old or new, nothing else.
func TestDiskCrashPointRecovery(t *testing.T) {
	key := fmt.Sprintf("%032x", 77)
	oldRes := &soc.Result{EnergyJ: 1.0, TasksDone: 1, Completed: true}
	newRes := &soc.Result{EnergyJ: 2.0, TasksDone: 2, Completed: true}
	oldDig, newDig := engine.ResultDigest(oldRes), engine.ResultDigest(newRes)

	for _, syncMode := range []bool{false, true} {
		for _, seedN := range []uint64{1, 2, 3} {
			seed := workload.NewSeed(seedN)
			name := fmt.Sprintf("sync=%v/seed=%d", syncMode, seedN)

			// Measure the op count of one overwriting Put on this
			// configuration: the sweep bound.
			probeDir := t.TempDir()
			mustPut(t, probeDir, key, oldRes, syncMode)
			probe := NewCrashFS(seed, -1)
			d, err := engine.NewDiskWith(probeDir, engine.DiskOptions{Sync: syncMode, FS: probe})
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Put(key, mustRec(t, key, newRes)); err != nil {
				t.Fatalf("%s: clean modelled Put failed: %v", name, err)
			}
			nOps := probe.Ops()
			if nOps < 3 {
				t.Fatalf("%s: implausible op count %d for a Put", name, nOps)
			}

			healedAbsent := false
			// k == nOps is the explicit post-Put crash.
			for k := 0; k <= nOps; k++ {
				dir := t.TempDir()
				mustPut(t, dir, key, oldRes, syncMode)
				fs := NewCrashFS(seed.SplitN(k), k)
				if k == nOps {
					fs = NewCrashFS(seed.SplitN(k), -1)
				}
				d, err := engine.NewDiskWith(dir, engine.DiskOptions{Sync: syncMode, FS: fs})
				if err != nil {
					t.Fatal(err)
				}
				putErr := d.Put(key, mustRec(t, key, newRes))
				if !fs.Crashed() {
					fs.Crash()
				}
				if k < nOps && putErr == nil {
					t.Fatalf("%s k=%d: Put survived a crash scheduled inside it", name, k)
				}
				if k < nOps && !errors.Is(putErr, ErrCrashed) {
					t.Fatalf("%s k=%d: Put error %v does not wrap ErrCrashed", name, k, putErr)
				}

				got, ok := reopenGet(t, dir, key)
				switch {
				case ok:
					dig := got.Digest()
					if dig != oldDig && dig != newDig {
						t.Fatalf("%s k=%d: slot holds a third value after crash", name, k)
					}
					if syncMode && putErr == nil && dig != newDig {
						// Sync mode returned success: the new value must be
						// durable, not just visible.
						t.Fatalf("%s k=%d: synced Put acked but old value survived the crash", name, k)
					}
				case syncMode:
					t.Fatalf("%s k=%d: Sync mode lost the slot entirely (torn or vanished entry)", name, k)
				default:
					// Unsynced mode may tear the renamed entry; recovery
					// must have healed the slot to absent, and a Put must
					// re-fill it.
					healedAbsent = true
					dh, err := engine.NewDiskWith(dir, engine.DiskOptions{})
					if err != nil {
						t.Fatal(err)
					}
					if err := dh.Put(key, mustRec(t, key, newRes)); err != nil {
						t.Fatalf("%s k=%d: healing Put failed: %v", name, k, err)
					}
					if got, ok := dh.Get(key); !ok || got.Digest() != newDig {
						t.Fatalf("%s k=%d: slot did not heal after Put", name, k)
					}
				}

				// Recovery must leave no abandoned temp files behind.
				if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp*")); len(tmps) != 0 {
					t.Fatalf("%s k=%d: %d temp files survived recovery", name, k, len(tmps))
				}
			}
			if !syncMode && !healedAbsent {
				t.Logf("%s: no torn entry observed across %d crash points", name, nOps+1)
			}
		}
	}
}

// TestCrashFSTearsUnsyncedRename: the specific hazard Sync exists for —
// power loss right after an unsynced Put returns leaves a torn final
// entry (healable), while a synced Put's acked value survives intact.
func TestCrashFSTearsUnsyncedRename(t *testing.T) {
	key := fmt.Sprintf("%032x", 5)
	res := &soc.Result{EnergyJ: 3.5, TasksDone: 9, Completed: true}

	// Find a seed whose crash flush tears the file strictly partially.
	torn := false
	for seedN := uint64(0); seedN < 32 && !torn; seedN++ {
		dir := t.TempDir()
		fs := NewCrashFS(workload.NewSeed(seedN), -1)
		d, err := engine.NewDiskWith(dir, engine.DiskOptions{Sync: false, FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Put(key, mustRec(t, key, res)); err != nil {
			t.Fatal(err)
		}
		fs.Crash()
		if _, ok := reopenGet(t, dir, key); !ok {
			torn = true
		}
	}
	if !torn {
		t.Fatal("no seed in 32 tore an unsynced renamed entry; the model lost its hazard")
	}

	// Sync mode: same power loss, the acked entry is complete.
	dir := t.TempDir()
	fs := NewCrashFS(workload.NewSeed(0), -1)
	d, err := engine.NewDiskWith(dir, engine.DiskOptions{Sync: true, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(key, mustRec(t, key, res)); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	got, ok := reopenGet(t, dir, key)
	if !ok || got.Digest() != engine.ResultDigest(res) {
		t.Fatal("synced Put's acked entry did not survive the crash")
	}
}

// TestFaultFSTornWritesFailOpen: a torn write fails the Put, never
// publishes a partial entry, and the slot heals on the next clean Put.
func TestFaultFSTornWritesFailOpen(t *testing.T) {
	dir := t.TempDir()
	key := fmt.Sprintf("%032x", 3)
	res := &soc.Result{EnergyJ: 4.0, Completed: true}

	// Every write tears (outage forces FaultTransient; use PTorn=1 via
	// the probability draw instead so writes tear specifically).
	fs := NewFaultFS(engine.OSFS, workload.NewSeed(11), Spec{PTorn: 1})
	d, err := engine.NewDiskWith(dir, engine.DiskOptions{FS: fs, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(key, mustRec(t, key, res)); err == nil {
		t.Fatal("torn write did not fail the Put")
	} else if !errors.Is(err, ErrInjected) {
		t.Fatalf("Put error %v does not wrap ErrInjected", err)
	}
	if _, ok := reopenGet(t, dir, key); ok {
		t.Fatal("a torn write published an entry")
	}
	if st := fs.Stats(); st.Torn == 0 {
		t.Fatalf("stats = %+v, want torn > 0", st)
	}

	// The same directory heals with a clean writer.
	clean, err := engine.NewDiskWith(dir, engine.DiskOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := clean.Put(key, mustRec(t, key, res)); err != nil {
		t.Fatal(err)
	}
	if got, ok := reopenGet(t, dir, key); !ok || got.Digest() != engine.ResultDigest(res) {
		t.Fatal("slot did not heal")
	}
}
