package battery

import (
	"math"
	"testing"
	"testing/quick"

	"godpm/internal/sim"
)

func TestPeukertIdealMatchesLinear(t *testing.T) {
	// Exponent 1 must behave exactly like an ideal reservoir.
	p := NewPeukert(100, 1.0, 1.0, 1.0)
	l := NewLinear(100, 1.0)
	p.Step(2.0, 10*sim.Sec)
	l.Step(2.0, 10*sim.Sec)
	if math.Abs(p.SoC()-l.SoC()) > 1e-12 {
		t.Fatalf("Peukert(k=1) SoC %v != Linear %v", p.SoC(), l.SoC())
	}
}

func TestPeukertHighRatePenalty(t *testing.T) {
	// Same energy at double the rate costs more charge when k > 1.
	lo := NewPeukert(1000, 1.0, 1.3, 1.0)
	hi := NewPeukert(1000, 1.0, 1.3, 1.0)
	lo.Step(1.0, 20*sim.Sec)
	hi.Step(2.0, 10*sim.Sec)
	if hi.SoC() >= lo.SoC() {
		t.Fatalf("no rate penalty: hi %v >= lo %v", hi.SoC(), lo.SoC())
	}
}

func TestPeukertSubReferenceRateBonus(t *testing.T) {
	// Below the reference rate, the effective draw is below the actual
	// draw (the flip side of Peukert's law).
	b := NewPeukert(100, 1.0, 1.3, 1.0)
	b.Step(0.25, 10*sim.Sec) // 2.5 J at a quarter of the reference rate
	drawn := (1 - b.SoC()) * 100
	if drawn >= 2.5 {
		t.Fatalf("drawn %v J, want less than the nominal 2.5 J", drawn)
	}
}

func TestPeukertClampsAndIgnoresNegative(t *testing.T) {
	b := NewPeukert(1, 0.1, 1.2, 1.0)
	b.Step(-1, sim.Sec)
	if b.SoC() != 0.1 {
		t.Fatal("negative power changed charge")
	}
	b.Step(100, 10*sim.Sec)
	if b.SoC() != 0 {
		t.Fatalf("SoC %v, want clamped 0", b.SoC())
	}
}

func TestPeukertRecharge(t *testing.T) {
	b := NewPeukert(100, 0.2, 1.2, 1.0)
	b.Recharge(0.9)
	if b.SoC() != 0.9 {
		t.Fatalf("SoC %v after recharge", b.SoC())
	}
	if b.TotalCharge() != 0.9 || b.CapacityJ() != 100 {
		t.Fatal("accessors wrong")
	}
}

func TestPeukertBadParamsPanic(t *testing.T) {
	bad := [][4]float64{
		{0, 1, 1.2, 1},     // capacity
		{100, 1.5, 1.2, 1}, // soc
		{100, 1, 0.9, 1},   // exponent < 1
		{100, 1, 1.2, 0},   // refPower
	}
	for i, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			NewPeukert(p[0], p[1], p[2], p[3])
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad recharge accepted")
			}
		}()
		NewPeukert(100, 1, 1.2, 1).Recharge(2)
	}()
}

// Property: discharge is monotone in rate for any exponent >= 1.
func TestPeukertMonotoneProperty(t *testing.T) {
	f := func(a, b uint8, kRaw uint8) bool {
		k := 1 + float64(kRaw%50)/100 // 1.00..1.49
		pa, pb := float64(a%40)/10, float64(b%40)/10
		if pa > pb {
			pa, pb = pb, pa
		}
		m1 := NewPeukert(1000, 1, k, 1)
		m2 := NewPeukert(1000, 1, k, 1)
		m1.Step(pa, 10*sim.Sec)
		m2.Step(pb, 10*sim.Sec)
		return m2.SoC() <= m1.SoC()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
