package battery

import "godpm/internal/sim"

// Pack is the simulation component wrapping a battery Model: it exposes the
// quantised status as a signal the LEM/GEM are sensitive to, and absorbs the
// SoC's total power draw step by step. A mains-powered pack reports Mains
// regardless of the model's charge.
type Pack struct {
	model  Model
	th     Thresholds
	status *sim.Signal[Status]
	mains  bool
}

// NewPack creates a pack around model. The status signal is initialised to
// the model's current classification (or Mains).
func NewPack(k *sim.Kernel, name string, model Model, th Thresholds, mains bool) *Pack {
	if err := th.Validate(); err != nil {
		panic(err)
	}
	init := th.Classify(model.SoC())
	if mains {
		init = Mains
	}
	return &Pack{
		model:  model,
		th:     th,
		status: sim.NewSignal(k, name+".status", init),
		mains:  mains,
	}
}

// Step applies a power draw over dt and refreshes the status signal. It
// must be called from a kernel process (the SoC's power accountant).
func (p *Pack) Step(power float64, dt sim.Time) {
	if p.mains {
		return
	}
	p.model.Step(power, dt)
	p.status.Write(p.th.Classify(p.model.SoC()))
}

// Status returns the current quantised class.
func (p *Pack) Status() Status { return p.status.Read() }

// StatusSignal exposes the class signal for sensitivity and tracing.
func (p *Pack) StatusSignal() *sim.Signal[Status] { return p.status }

// SoC returns the model's usable state of charge (1.0 when on mains).
func (p *Pack) SoC() float64 {
	if p.mains {
		return 1
	}
	return p.model.SoC()
}

// Mains reports whether the pack is mains-powered.
func (p *Pack) Mains() bool { return p.mains }

// Model returns the wrapped chemistry model (nil-safe for probing).
func (p *Pack) Model() Model { return p.model }

// PredictStatus estimates the class after drawing `power` watts for dt,
// without mutating the model — the LEM's "estimate the battery status at
// the end of the task" step. The estimate is first-order: charge decreases
// by power·dt (recovery during the task is ignored, which is conservative).
func (p *Pack) PredictStatus(power float64, dt sim.Time) Status {
	if p.mains {
		return Mains
	}
	drop := power * dt.Seconds() / p.model.CapacityJ()
	soc := p.model.SoC() - drop
	if soc < 0 {
		soc = 0
	}
	return p.th.Classify(soc)
}
