package battery

import (
	"testing"
	"testing/quick"

	"godpm/internal/sim"
)

func TestStatusStringsAndParse(t *testing.T) {
	for s := Status(0); int(s) < NumStatuses; s++ {
		got, err := ParseStatus(s.String())
		if err != nil || got != s {
			t.Errorf("round trip failed for %v", s)
		}
	}
	if _, err := ParseStatus("Overfull"); err == nil {
		t.Error("bogus status parsed")
	}
}

func TestThresholdClassification(t *testing.T) {
	th := DefaultThresholds()
	cases := []struct {
		soc  float64
		want Status
	}{
		{0.0, Empty}, {0.049, Empty}, {0.05, Low}, {0.29, Low},
		{0.30, Medium}, {0.59, Medium}, {0.60, High}, {0.84, High},
		{0.85, Full}, {1.0, Full},
	}
	for _, c := range cases {
		if got := th.Classify(c.soc); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.soc, got, c.want)
		}
	}
}

func TestThresholdsValidate(t *testing.T) {
	if err := DefaultThresholds().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Thresholds{EmptyBelow: 0.5, LowBelow: 0.3, MediumBelow: 0.6, HighBelow: 0.85}
	if err := bad.Validate(); err == nil {
		t.Fatal("non-monotonic thresholds accepted")
	}
}

func TestLinearDischarge(t *testing.T) {
	b := NewLinear(100, 1.0) // 100 J
	b.Step(1.0, 10*sim.Sec)  // 1 W for 10 s = 10 J
	if soc := b.SoC(); soc < 0.899 || soc > 0.901 {
		t.Fatalf("SoC = %v, want 0.9", soc)
	}
	if b.TotalCharge() != b.SoC() {
		t.Fatal("linear TotalCharge should equal SoC")
	}
}

func TestLinearNeverNegative(t *testing.T) {
	b := NewLinear(10, 0.1)
	b.Step(100, 10*sim.Sec)
	if b.SoC() != 0 {
		t.Fatalf("SoC = %v, want clamped to 0", b.SoC())
	}
}

func TestLinearRateCapacityPenalty(t *testing.T) {
	// Same energy delivered at double the power must cost more charge when
	// RateK > 0.
	lo := NewLinear(1000, 1.0)
	hi := NewLinear(1000, 1.0)
	lo.RateK, lo.RefPower = 0.5, 1.0
	hi.RateK, hi.RefPower = 0.5, 1.0
	lo.Step(1.0, 20*sim.Sec) // 20 J at 1 W
	hi.Step(2.0, 10*sim.Sec) // 20 J at 2 W
	if hi.SoC() >= lo.SoC() {
		t.Fatalf("rate-capacity penalty missing: hi %v >= lo %v", hi.SoC(), lo.SoC())
	}
}

func TestLinearNegativePowerIgnored(t *testing.T) {
	b := NewLinear(100, 0.5)
	b.Step(-5, sim.Sec)
	if b.SoC() != 0.5 {
		t.Fatalf("negative power changed charge: %v", b.SoC())
	}
}

func TestLinearBadParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLinear(0, 0.5)
}

func TestKiBaMDischargeAndBounds(t *testing.T) {
	b := NewKiBaM(100, 1.0, 0.4, 0.1)
	b.Step(1.0, 10*sim.Sec)
	if b.SoC() >= 1.0 {
		t.Fatal("KiBaM did not discharge")
	}
	if b.TotalCharge() > 0.91 || b.TotalCharge() < 0.89 {
		t.Fatalf("TotalCharge = %v, want ~0.9 (10 J of 100 J drawn)", b.TotalCharge())
	}
}

func TestKiBaMRateCapacityEffect(t *testing.T) {
	// Under heavy load the available well drains faster than the bound well
	// refills: usable SoC drops below total charge.
	b := NewKiBaM(100, 1.0, 0.3, 0.05)
	b.Step(5.0, 4*sim.Sec)
	if b.SoC() >= b.TotalCharge() {
		t.Fatalf("SoC %v should lag TotalCharge %v under load", b.SoC(), b.TotalCharge())
	}
}

func TestKiBaMRecoveryEffect(t *testing.T) {
	// After load is removed, the available well refills from the bound
	// well: SoC rises with zero draw. This drives scenario B/C.
	b := NewKiBaM(100, 1.0, 0.3, 0.05)
	b.Step(5.0, 4*sim.Sec)
	low := b.SoC()
	b.Step(0, 60*sim.Sec)
	if b.SoC() <= low {
		t.Fatalf("no recovery: SoC %v after rest, was %v", b.SoC(), low)
	}
	// Total charge must not increase during rest (no free energy).
	if b.TotalCharge() > 0.81 {
		t.Fatalf("TotalCharge grew during rest: %v", b.TotalCharge())
	}
}

func TestKiBaMConservationAtRest(t *testing.T) {
	b := NewKiBaM(100, 0.8, 0.4, 0.1)
	before := b.TotalCharge()
	b.Step(0, 100*sim.Sec)
	after := b.TotalCharge()
	if diff := before - after; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("rest changed total charge by %v", diff)
	}
}

func TestKiBaMBadParamsPanic(t *testing.T) {
	bad := [][4]float64{
		{0, 1, 0.4, 0.1},   // capacity
		{100, 2, 0.4, 0.1}, // soc
		{100, 1, 0, 0.1},   // c
		{100, 1, 1, 0.1},   // c
		{100, 1, 0.4, 0},   // k
	}
	for i, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			NewKiBaM(p[0], p[1], p[2], p[3])
		}()
	}
}

// Property: discharge is monotone — more energy drawn never leaves more
// charge, for both models.
func TestDischargeMonotoneProperty(t *testing.T) {
	f := func(p1, p2 uint8) bool {
		a, b := float64(p1%50)/10, float64(p2%50)/10
		if a > b {
			a, b = b, a
		}
		l1, l2 := NewLinear(1000, 1), NewLinear(1000, 1)
		l1.Step(a, 10*sim.Sec)
		l2.Step(b, 10*sim.Sec)
		if l2.SoC() > l1.SoC()+1e-12 {
			return false
		}
		k1 := NewKiBaM(1000, 1, 0.4, 0.1)
		k2 := NewKiBaM(1000, 1, 0.4, 0.1)
		k1.Step(a, 10*sim.Sec)
		k2.Step(b, 10*sim.Sec)
		return k2.TotalCharge() <= k1.TotalCharge()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPackStatusSignal(t *testing.T) {
	k := sim.NewKernel()
	p := NewPack(k, "bat", NewLinear(100, 0.95), DefaultThresholds(), false)
	if p.Status() != Full {
		t.Fatalf("initial status %v, want Full", p.Status())
	}
	var observed []Status
	p.StatusSignal().OnChange(func(_ sim.Time, s Status) { observed = append(observed, s) })
	e := k.NewEvent("tick")
	n := 0
	k.Method("drain", func() {
		p.Step(10, 2*sim.Sec) // 20 J per tick
		n++
		if n < 5 {
			e.Notify(sim.Ms)
		}
	}).Sensitive(e)
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	// 95 J initial, 20 J per tick → Full, High(75), Medium(55), Low(35→15), Empty.
	if len(observed) < 3 {
		t.Fatalf("observed transitions %v, want several classes", observed)
	}
	last := observed[len(observed)-1]
	if last != Empty && last != Low {
		t.Fatalf("final class %v, want Low or Empty", last)
	}
}

func TestPackMains(t *testing.T) {
	k := sim.NewKernel()
	p := NewPack(k, "psu", NewLinear(100, 0.5), DefaultThresholds(), true)
	if p.Status() != Mains {
		t.Fatalf("status %v, want Mains", p.Status())
	}
	p.Step(1000, sim.Sec)
	if p.Status() != Mains || p.SoC() != 1 {
		t.Fatal("mains pack must ignore load")
	}
	if p.PredictStatus(1000, sim.Sec) != Mains {
		t.Fatal("mains prediction must be Mains")
	}
}

func TestPackPredictStatus(t *testing.T) {
	k := sim.NewKernel()
	p := NewPack(k, "bat", NewLinear(100, 0.35), DefaultThresholds(), false)
	if p.Status() != Medium {
		t.Fatalf("status %v, want Medium", p.Status())
	}
	// Drawing 10 W for 1 s = 10 J → SoC 0.25 → Low.
	if got := p.PredictStatus(10, sim.Sec); got != Low {
		t.Fatalf("PredictStatus = %v, want Low", got)
	}
	// Prediction must not mutate.
	if p.SoC() != 0.35 {
		t.Fatalf("prediction mutated SoC to %v", p.SoC())
	}
	// Over-draw clamps at Empty.
	if got := p.PredictStatus(1000, sim.Sec); got != Empty {
		t.Fatalf("PredictStatus overdraw = %v, want Empty", got)
	}
}
