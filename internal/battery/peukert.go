package battery

import (
	"math"

	"godpm/internal/sim"
)

// Peukert is the classical empirical discharge model: at draw rate P the
// charge depletes as if the rate were P·(P/Pref)^(k−1), with Peukert
// exponent k > 1 — sustained high-rate discharge wastes disproportionate
// charge, more aggressively than Linear's quadratic penalty, and with the
// textbook functional form. There is no recovery effect; compare KiBaM.
type Peukert struct {
	capacity float64
	charge   float64
	// Exponent is the Peukert constant k (1 = ideal, lead-acid ≈ 1.3,
	// Li-ion ≈ 1.05).
	Exponent float64
	// RefPower is the rate at which the nominal capacity was specified.
	RefPower float64
}

// NewPeukert creates a Peukert-law battery. exponent must be >= 1 and
// refPower positive.
func NewPeukert(capacityJ, initialSoC, exponent, refPower float64) *Peukert {
	if capacityJ <= 0 || initialSoC < 0 || initialSoC > 1 {
		panic("battery: bad Peukert capacity or SoC")
	}
	if exponent < 1 || refPower <= 0 {
		panic("battery: Peukert exponent must be >= 1 and refPower > 0")
	}
	return &Peukert{
		capacity: capacityJ,
		charge:   capacityJ * initialSoC,
		Exponent: exponent,
		RefPower: refPower,
	}
}

// Step implements Model.
func (b *Peukert) Step(power float64, dt sim.Time) {
	if power <= 0 {
		return
	}
	eff := power * math.Pow(power/b.RefPower, b.Exponent-1)
	b.charge -= eff * dt.Seconds()
	if b.charge < 0 {
		b.charge = 0
	}
}

// SoC implements Model.
func (b *Peukert) SoC() float64 { return b.charge / b.capacity }

// TotalCharge implements Model.
func (b *Peukert) TotalCharge() float64 { return b.SoC() }

// CapacityJ implements Model.
func (b *Peukert) CapacityJ() float64 { return b.capacity }

// Clone implements Model.
func (b *Peukert) Clone() Model { c := *b; return &c }

// Recharge sets the state of charge (an external charger).
func (b *Peukert) Recharge(soc float64) {
	if soc < 0 || soc > 1 {
		panic("battery: recharge SoC outside [0,1]")
	}
	b.charge = b.capacity * soc
}
