// Package battery models the SoC's energy source. The paper's GEM/LEM only
// observe a quantised battery status in five classes (Empty, Low, Medium,
// High, Full — plus mains power, which Table 1 lists as "Power supply"),
// but scenario B/C dynamics depend on the battery's behaviour under load:
// we provide a simple linear reservoir with a rate-capacity penalty and a
// kinetic battery model (KiBaM) whose charge-recovery effect lets the
// status class climb back when the load drops.
package battery

import (
	"fmt"

	"godpm/internal/sim"
)

// Status is the quantised battery class the energy managers observe.
type Status int

// Battery classes in increasing order of charge, plus Mains.
const (
	Empty Status = iota
	Low
	Medium
	High
	Full
	// Mains means the system runs from a power supply, not the battery
	// ("Power supply" row of the paper's Table 1).
	Mains
	NumStatuses = int(Mains) + 1
)

// String returns the paper's name for the class.
func (s Status) String() string {
	switch s {
	case Empty:
		return "Empty"
	case Low:
		return "Low"
	case Medium:
		return "Medium"
	case High:
		return "High"
	case Full:
		return "Full"
	case Mains:
		return "Mains"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ParseStatus converts a class name back to a Status.
func ParseStatus(name string) (Status, error) {
	for s := Status(0); int(s) < NumStatuses; s++ {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("battery: unknown status %q", name)
}

// Thresholds maps state of charge to a Status: soc < Empty→Empty etc.
type Thresholds struct {
	EmptyBelow  float64
	LowBelow    float64
	MediumBelow float64
	HighBelow   float64
}

// DefaultThresholds returns the classification used in the experiments.
func DefaultThresholds() Thresholds {
	return Thresholds{EmptyBelow: 0.05, LowBelow: 0.30, MediumBelow: 0.60, HighBelow: 0.85}
}

// Classify quantises a state of charge in [0,1].
func (th Thresholds) Classify(soc float64) Status {
	switch {
	case soc < th.EmptyBelow:
		return Empty
	case soc < th.LowBelow:
		return Low
	case soc < th.MediumBelow:
		return Medium
	case soc < th.HighBelow:
		return High
	default:
		return Full
	}
}

// Validate checks the thresholds are strictly increasing within (0,1).
func (th Thresholds) Validate() error {
	vals := []float64{0, th.EmptyBelow, th.LowBelow, th.MediumBelow, th.HighBelow, 1}
	for i := 0; i+1 < len(vals); i++ {
		if vals[i] >= vals[i+1] {
			return fmt.Errorf("battery: thresholds not strictly increasing: %v", th)
		}
	}
	return nil
}

// Model is a battery chemistry: it absorbs load steps and reports state of
// charge.
type Model interface {
	// Step applies a constant power draw (watts) for dt of simulated time.
	Step(power float64, dt sim.Time)
	// SoC returns the usable state of charge in [0,1] — what the status
	// encoder observes.
	SoC() float64
	// TotalCharge returns the total remaining energy fraction in [0,1]
	// (for KiBaM this includes bound charge not immediately usable).
	TotalCharge() float64
	// CapacityJ returns the nominal capacity in joules.
	CapacityJ() float64
	// Clone returns an independent copy of the model in its current state:
	// stepping the clone must reproduce bit-for-bit what stepping the
	// original would, without touching the original. Run snapshots step a
	// clone through the final partial interval so the live trajectory is
	// not perturbed.
	Clone() Model
}

// Linear is an energy reservoir with an optional rate-capacity penalty:
// drawing power P costs P·(1 + RateK·P/RefPower) — high currents waste
// charge, a first-order stand-in for Peukert's law.
type Linear struct {
	capacity float64
	charge   float64
	RateK    float64
	RefPower float64
}

// NewLinear creates a linear battery with the given capacity (joules) and
// initial state of charge in [0,1].
func NewLinear(capacityJ, initialSoC float64) *Linear {
	if capacityJ <= 0 || initialSoC < 0 || initialSoC > 1 {
		panic("battery: bad linear battery parameters")
	}
	return &Linear{capacity: capacityJ, charge: capacityJ * initialSoC, RefPower: 1}
}

// Step implements Model.
func (b *Linear) Step(power float64, dt sim.Time) {
	if power < 0 {
		power = 0
	}
	eff := power
	if b.RateK > 0 && b.RefPower > 0 {
		eff = power * (1 + b.RateK*power/b.RefPower)
	}
	b.charge -= eff * dt.Seconds()
	if b.charge < 0 {
		b.charge = 0
	}
}

// Recharge sets the state of charge (an external charger).
func (b *Linear) Recharge(soc float64) {
	if soc < 0 || soc > 1 {
		panic("battery: recharge SoC outside [0,1]")
	}
	b.charge = b.capacity * soc
}

// SoC implements Model.
func (b *Linear) SoC() float64 { return b.charge / b.capacity }

// TotalCharge implements Model.
func (b *Linear) TotalCharge() float64 { return b.SoC() }

// CapacityJ implements Model.
func (b *Linear) CapacityJ() float64 { return b.capacity }

// Clone implements Model.
func (b *Linear) Clone() Model { c := *b; return &c }

// KiBaM is the kinetic battery model: charge is split between an available
// well (fraction C of capacity) that supplies the load directly and a bound
// well that refills the available well at a rate proportional to the head
// difference. Under sustained load the available well drains faster than
// the bound well refills it (rate-capacity effect); at rest charge flows
// back (recovery effect) — the mechanism that lets scenario B/C's battery
// class climb from Low back to Medium.
type KiBaM struct {
	capacity  float64 // joules
	c         float64 // available-well fraction, 0 < c < 1
	kPerSec   float64 // valve rate constant (1/s)
	maxStep   float64 // Euler stability bound 1/(10k), precomputed
	available float64 // joules in the available well
	bound     float64 // joules in the bound well
}

// NewKiBaM creates a kinetic battery. c is the available-charge fraction
// (typically 0.2–0.6); k the valve rate constant per second.
func NewKiBaM(capacityJ, initialSoC, c, kPerSec float64) *KiBaM {
	if capacityJ <= 0 || initialSoC < 0 || initialSoC > 1 || c <= 0 || c >= 1 || kPerSec <= 0 {
		panic("battery: bad KiBaM parameters")
	}
	total := capacityJ * initialSoC
	return &KiBaM{
		capacity:  capacityJ,
		c:         c,
		kPerSec:   kPerSec,
		maxStep:   1 / (10 * kPerSec),
		available: total * c,
		bound:     total * (1 - c),
	}
}

// Step integrates the two-well ODEs with sub-stepping for stability.
func (b *KiBaM) Step(power float64, dt sim.Time) {
	if power < 0 {
		power = 0
	}
	remaining := dt.Seconds()
	// Explicit Euler with steps bounded by 1/(10k) for stability.
	maxStep := b.maxStep
	for remaining > 1e-15 {
		h := remaining
		if h > maxStep {
			h = maxStep
		}
		h1 := b.available / b.c
		h2 := b.bound / (1 - b.c)
		flow := b.kPerSec * (h2 - h1) // joules/sec from bound to available
		b.available += (flow - power) * h
		b.bound -= flow * h
		if b.available < 0 {
			b.available = 0
		}
		if b.bound < 0 {
			b.bound = 0
		}
		remaining -= h
	}
}

// Recharge sets the total state of charge, distributed between the wells
// in equilibrium proportions (an external charger).
func (b *KiBaM) Recharge(soc float64) {
	if soc < 0 || soc > 1 {
		panic("battery: recharge SoC outside [0,1]")
	}
	total := b.capacity * soc
	b.available = total * b.c
	b.bound = total * (1 - b.c)
}

// SoC implements Model: the usable state of charge is the available well
// relative to its share of capacity.
func (b *KiBaM) SoC() float64 {
	soc := b.available / (b.c * b.capacity)
	if soc > 1 {
		return 1
	}
	return soc
}

// TotalCharge implements Model.
func (b *KiBaM) TotalCharge() float64 { return (b.available + b.bound) / b.capacity }

// CapacityJ implements Model.
func (b *KiBaM) CapacityJ() float64 { return b.capacity }

// Clone implements Model.
func (b *KiBaM) Clone() Model { c := *b; return &c }
