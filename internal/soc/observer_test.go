package soc

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"godpm/internal/acpi"
	"godpm/internal/battery"
	"godpm/internal/sim"
	"godpm/internal/stats"
	"godpm/internal/thermal"
	"godpm/internal/workload"
)

// observedConfig is a multi-IP DPM configuration with GEM and bus — enough
// moving parts that every observer callback kind fires.
func observedConfig() Config {
	return Config{
		IPs: []IPSpec{
			{Name: "cpu", Sequence: workload.HighActivity(7, 25).MustGenerate()},
			{Name: "dsp", Sequence: workload.LowActivity(8, 25).MustGenerate()},
		},
		Policy:   PolicyDPM,
		UseGEM:   true,
		Battery:  DefaultBattery(0.55),
		BusWords: 16,
	}
}

// recordObserver overrides every callback, counting deliveries.
type recordObserver struct {
	NopObserver
	info                                    RunInfo
	states, transitions, tasks              int
	samples, battery, thermal, starts, ends int
	lastSample                              Sample
	endResult                               *Result
}

func (o *recordObserver) RunStart(info *RunInfo) {
	o.starts++
	o.info = *info
	o.info.IPs = append([]string(nil), info.IPs...)
}
func (o *recordObserver) PSMState(t sim.Time, ip int, s acpi.State)  { o.states++ }
func (o *recordObserver) PSMTransition(t sim.Time, ip int, a bool)   { o.transitions++ }
func (o *recordObserver) TaskDone(t sim.Time, rec *stats.TaskRecord) { o.tasks++ }
func (o *recordObserver) Sample(t sim.Time, s *Sample) {
	o.samples++
	o.lastSample.TempC, o.lastSample.SoC = s.TempC, s.SoC
	o.lastSample.PowerW = append(o.lastSample.PowerW[:0], s.PowerW...)
}
func (o *recordObserver) BatteryStatus(t sim.Time, st battery.Status) { o.battery++ }
func (o *recordObserver) ThermalClass(t sim.Time, c thermal.Class)    { o.thermal++ }
func (o *recordObserver) RunEnd(res *Result)                          { o.ends++; o.endResult = res }

// TestObservedRunBitIdentical is the determinism contract the batch
// engine's caching rests on: attaching observers must not perturb the
// simulation in any way — EnergyJ, AvgTempC and the kernel's delta-cycle
// checksum come out bit-identical to a bare Run of the same Config.
func TestObservedRunBitIdentical(t *testing.T) {
	cfg := observedConfig()
	bare, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs := &recordObserver{}
	watched, err := RunWith(context.Background(), cfg, RunOptions{Observers: []Observer{obs}})
	if err != nil {
		t.Fatal(err)
	}
	if bare.EnergyJ != watched.EnergyJ {
		t.Errorf("EnergyJ: bare %v, observed %v", bare.EnergyJ, watched.EnergyJ)
	}
	if bare.AvgTempC != watched.AvgTempC {
		t.Errorf("AvgTempC: bare %v, observed %v", bare.AvgTempC, watched.AvgTempC)
	}
	if bare.Deltas != watched.Deltas {
		t.Errorf("Deltas: bare %d, observed %d", bare.Deltas, watched.Deltas)
	}
	if bare.Duration != watched.Duration || bare.TasksDone != watched.TasksDone {
		t.Errorf("Duration/TasksDone diverged: %v/%d vs %v/%d",
			bare.Duration, bare.TasksDone, watched.Duration, watched.TasksDone)
	}
	for name, e := range bare.EnergyByIP {
		if watched.EnergyByIP[name] != e {
			t.Errorf("EnergyByIP[%s]: bare %v, observed %v", name, e, watched.EnergyByIP[name])
		}
	}
}

// TestObserverCallbackDelivery checks that every callback kind fires and
// that the RunInfo snapshot matches the configuration.
func TestObserverCallbackDelivery(t *testing.T) {
	cfg := observedConfig()
	obs := &recordObserver{}
	res, err := RunWith(context.Background(), cfg, RunOptions{Observers: []Observer{obs}})
	if err != nil {
		t.Fatal(err)
	}
	if obs.starts != 1 || obs.ends != 1 {
		t.Fatalf("starts=%d ends=%d, want 1/1", obs.starts, obs.ends)
	}
	if obs.endResult != res {
		t.Error("RunEnd result is not the returned Result")
	}
	if len(obs.info.IPs) != 2 || obs.info.IPs[0] != "cpu" || obs.info.IPs[1] != "dsp" {
		t.Errorf("RunInfo.IPs = %v", obs.info.IPs)
	}
	if obs.info.BatterySignal != "battery.status" || obs.info.ThermalSignal != "die.class" {
		t.Errorf("signal names: %q, %q", obs.info.BatterySignal, obs.info.ThermalSignal)
	}
	if obs.tasks != res.TasksDone {
		t.Errorf("TaskDone fired %d times, want %d", obs.tasks, res.TasksDone)
	}
	if obs.states == 0 || obs.transitions == 0 {
		t.Errorf("PSM callbacks: states=%d transitions=%d, want > 0", obs.states, obs.transitions)
	}
	// One sample fires per normalized SampleInterval (default 100 µs); the
	// tick at the stop instant itself may or may not run depending on the
	// completion delta, so allow one sample of slack.
	want := int(res.Duration / (100 * sim.Us))
	if obs.samples < want-1 || obs.samples > want+1 {
		t.Errorf("samples = %d, want about %d (duration %v)", obs.samples, want, res.Duration)
	}
	if len(obs.lastSample.PowerW) != 2 || obs.lastSample.TempC <= 0 {
		t.Errorf("last sample: %+v", obs.lastSample)
	}
}

// TestStopConditions exercises each early-stop class.
func TestStopConditions(t *testing.T) {
	base := observedConfig()
	full, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("energy budget", func(t *testing.T) {
		budget := full.EnergyJ / 4
		res, err := RunWith(context.Background(), base, RunOptions{
			StopWhen: []StopCondition{StopOnEnergyBudget(budget)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.StopReason == "" || res.Completed {
			t.Fatalf("StopReason=%q Completed=%v, want early stop", res.StopReason, res.Completed)
		}
		if res.Duration >= full.Duration {
			t.Errorf("did not stop early: %v >= %v", res.Duration, full.Duration)
		}
		// One sample interval of slack: the condition is evaluated per tick.
		if res.EnergyJ > budget+budget/2 {
			t.Errorf("EnergyJ %v far beyond budget %v", res.EnergyJ, budget)
		}
	})

	t.Run("temperature ceiling", func(t *testing.T) {
		res, err := RunWith(context.Background(), base, RunOptions{
			StopWhen: []StopCondition{StopOnTemperature(1)}, // below ambient: first tick
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.StopReason != "temp>=1" {
			t.Fatalf("StopReason = %q", res.StopReason)
		}
	})

	t.Run("battery empty", func(t *testing.T) {
		cfg := base
		cfg.Battery = DefaultBattery(0.06) // one tick from the Empty class
		cfg.Horizon = 300 * sim.Sec
		res, err := RunWith(context.Background(), cfg, RunOptions{
			StopWhen: []StopCondition{StopOnBatteryEmpty()},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.StopReason != "battery-empty" {
			t.Fatalf("StopReason = %q", res.StopReason)
		}
		if res.FinalBatteryStatus != battery.Empty {
			t.Errorf("FinalBatteryStatus = %v", res.FinalBatteryStatus)
		}
	})

	t.Run("first match wins", func(t *testing.T) {
		res, err := RunWith(context.Background(), base, RunOptions{
			StopWhen: []StopCondition{StopOnTemperature(1), StopOnEnergyBudget(0)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.StopReason != "temp>=1" {
			t.Fatalf("StopReason = %q, want the first matching condition", res.StopReason)
		}
	})

	t.Run("wall clock is volatile", func(t *testing.T) {
		opts := RunOptions{StopWhen: []StopCondition{StopOnWallClock(time.Hour)}}
		if !opts.Volatile() {
			t.Error("wall-clock options not volatile")
		}
		if (RunOptions{StopWhen: []StopCondition{StopOnBatteryEmpty()}}).Volatile() {
			t.Error("battery condition should not be volatile")
		}
	})
}

// TestRunWithCancellation: a cancelled context aborts the run at the next
// sample tick with ctx.Err().
func TestRunWithCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunWith(ctx, observedConfig(), RunOptions{}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// A run shorter than one sample tick must still honour the context:
	// the entry check covers what the per-tick poll cannot see.
	short := observedConfig()
	short.Horizon = 10 * sim.Us // below the 100 µs sample interval
	if _, err := RunWith(ctx, short, RunOptions{}); err != context.Canceled {
		t.Fatalf("sub-tick run: err = %v, want context.Canceled", err)
	}
}

// brokenObserver fails during RunStart, like a tracer whose file cannot be
// written.
type brokenObserver struct {
	NopObserver
	failed error
}

func (o *brokenObserver) RunStart(*RunInfo) { o.failed = errBroken }
func (o *brokenObserver) Err() error        { return o.failed }

var errBroken = fmt.Errorf("write refused")

// TestObserverSetupErrorFailsFast: an observer already broken after
// RunStart aborts the run before the kernel starts, preserving the old
// fail-fast behaviour of Config.TraceVCD's header write.
func TestObserverSetupErrorFailsFast(t *testing.T) {
	obs := &brokenObserver{}
	start := time.Now()
	_, err := RunWith(context.Background(), observedConfig(), RunOptions{
		Observers: []Observer{obs},
	})
	if err == nil || !strings.Contains(err.Error(), "write refused") {
		t.Fatalf("err = %v, want wrapped observer failure", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("setup failure took %v — did the simulation run anyway?", elapsed)
	}
}

// TestUnobservedDispatchAllocFree pins the no-observer run: with no
// observers registered and only value-probing stop conditions, the
// accountant tick — now including the stop-condition check — must stay at
// zero allocations per event, protecting the allocation-free hot path.
func TestUnobservedDispatchAllocFree(t *testing.T) {
	k, acct, interval := buildAccountant(t)
	acct.stops = []StopCondition{StopOnEnergyBudget(1e18), StopOnBatteryEmpty()}
	for i := 0; i < 64; i++ {
		if err := k.Run(k.Now() + interval); err != nil {
			t.Fatal(err)
		}
	}
	got := testing.AllocsPerRun(1000, func() {
		if err := k.Run(k.Now() + interval); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Errorf("unobserved tick with stop conditions: %v allocs/event, want 0", got)
	}
	if acct.stopReason != "" {
		t.Fatalf("spurious stop: %q", acct.stopReason)
	}
}
