package soc

import (
	"godpm/internal/acpi"
	"godpm/internal/battery"
	"godpm/internal/sim"
	"godpm/internal/stats"
	"godpm/internal/thermal"
)

// Observer receives a streaming view of one simulation run: PSM state
// changes, task completions, periodic samples of temperature/power/state of
// charge, battery and thermal class transitions, and the final Result.
// Attach observers through RunOptions.Observers; they are pure
// instrumentation — a run with observers attached produces a Result
// bit-identical to a bare run of the same Config, which is what keeps
// observed jobs cacheable in the batch engine.
//
// Implementations should embed NopObserver and override the callbacks they
// care about. Callbacks are invoked on the kernel's scheduling goroutine in
// simulation order; they must not block, and arguments marked as reused
// (RunInfo, Sample, TaskRecord pointers) are only valid for the duration of
// the call.
type Observer interface {
	// RunStart fires once before the kernel starts, with the normalized
	// configuration and the t=0 values of every traced quantity.
	RunStart(info *RunInfo)
	// PSMState fires when IP ip's power state machine lands in state s
	// (ip indexes RunInfo.IPs).
	PSMState(t sim.Time, ip int, s acpi.State)
	// PSMTransition fires when IP ip's transition-in-progress flag flips.
	PSMTransition(t sim.Time, ip int, active bool)
	// TaskDone fires after each task execution with its ledger record.
	TaskDone(t sim.Time, rec *stats.TaskRecord)
	// Sample fires every Config.SampleInterval with the sampled scalars.
	Sample(t sim.Time, s *Sample)
	// BatteryStatus fires on battery class transitions.
	BatteryStatus(t sim.Time, st battery.Status)
	// ThermalClass fires on transitions of the SoC-level temperature class
	// (the die sensor, or the hottest node under PerIPThermal).
	ThermalClass(t sim.Time, c thermal.Class)
	// RunEnd fires once after the kernel stops, with the completed Result.
	RunEnd(res *Result)
	// Err reports the observer's first internal failure (e.g. a trace-file
	// write error); a non-nil value fails the run after completion.
	Err() error
}

// RunInfo describes the run an observer is attached to. The pointer is
// only valid during the RunStart call; copy fields to retain them.
type RunInfo struct {
	// Config is the normalized configuration; treat it as read-only.
	Config *Config
	// IPs are the IP names, index-aligned with Config.IPs and with the ip
	// argument of PSMState/PSMTransition and Sample.PowerW.
	IPs []string
	// InitialStates are the t=0 PSM states (transitioning starts false).
	InitialStates []acpi.State
	// InitialBattery and InitialThermal are the t=0 classes.
	InitialBattery battery.Status
	InitialThermal thermal.Class
	// BatterySignal and ThermalSignal are the kernel names of the traced
	// class signals ("battery.status"; "die.class", or "die.hottest_class"
	// under PerIPThermal) — waveform writers label variables with them.
	BatterySignal string
	ThermalSignal string
}

// Sample is one periodic measurement. The struct (and its PowerW slice)
// is reused between callbacks; copy values to retain them.
type Sample struct {
	// TempC is the die temperature (hottest node under PerIPThermal).
	TempC float64
	// SoC is the battery state of charge in [0,1].
	SoC float64
	// PowerW is the instantaneous per-IP power, index-aligned with
	// RunInfo.IPs.
	PowerW []float64
}

// NopObserver implements every Observer callback as a no-op. Embed it to
// implement only the callbacks an observer cares about.
type NopObserver struct{}

// RunStart implements Observer.
func (NopObserver) RunStart(*RunInfo) {}

// PSMState implements Observer.
func (NopObserver) PSMState(sim.Time, int, acpi.State) {}

// PSMTransition implements Observer.
func (NopObserver) PSMTransition(sim.Time, int, bool) {}

// TaskDone implements Observer.
func (NopObserver) TaskDone(sim.Time, *stats.TaskRecord) {}

// Sample implements Observer.
func (NopObserver) Sample(sim.Time, *Sample) {}

// BatteryStatus implements Observer.
func (NopObserver) BatteryStatus(sim.Time, battery.Status) {}

// ThermalClass implements Observer.
func (NopObserver) ThermalClass(sim.Time, thermal.Class) {}

// RunEnd implements Observer.
func (NopObserver) RunEnd(*Result) {}

// Err implements Observer.
func (NopObserver) Err() error { return nil }

// dispatcher fans one run's instrumentation events out to the registered
// observers. It exists only when RunOptions.Observers is non-empty, so an
// unobserved run carries no dispatch code on any hot path.
type dispatcher struct {
	obs     []Observer
	meters  []*stats.EnergyMeter
	plant   *thermalPlant
	pack    *battery.Pack
	scratch Sample // reused for every Sample callback
}

// attach hooks the dispatcher onto the assembled SoC's signals. Hook
// registration order (per IP: state then transitioning; then battery; then
// thermal) fixes the event order observers see within one update phase,
// mirroring the pre-observer VCD attachment order.
func (d *dispatcher) attach(psms []*acpi.PSM, pack *battery.Pack, plant *thermalPlant) {
	d.pack, d.plant = pack, plant
	for i := range psms {
		i := i
		psms[i].StateSignal().OnChange(func(t sim.Time, s acpi.State) {
			for _, o := range d.obs {
				o.PSMState(t, i, s)
			}
		})
		psms[i].Transitioning().OnChange(func(t sim.Time, active bool) {
			for _, o := range d.obs {
				o.PSMTransition(t, i, active)
			}
		})
	}
	pack.StatusSignal().OnChange(func(t sim.Time, st battery.Status) {
		for _, o := range d.obs {
			o.BatteryStatus(t, st)
		}
	})
	plant.classSignal().OnChange(func(t sim.Time, c thermal.Class) {
		for _, o := range d.obs {
			o.ThermalClass(t, c)
		}
	})
}

// runStart forwards the run descriptor to every observer.
func (d *dispatcher) runStart(info *RunInfo) {
	for _, o := range d.obs {
		o.RunStart(info)
	}
}

// taskDone forwards one completed task (rec.Done is the completion time).
func (d *dispatcher) taskDone(rec stats.TaskRecord) {
	for _, o := range d.obs {
		o.TaskDone(rec.Done, &rec)
	}
}

// startSampler registers the periodic sampling process. It mirrors the old
// CSV sampler exactly: its own tick event, first sample at t = interval,
// values read before the accountant integrates the elapsed interval (the
// sampler's tick is notified first, so it runs first at each instant).
func (d *dispatcher) startSampler(k *sim.Kernel, interval sim.Time) {
	d.scratch.PowerW = make([]float64, len(d.meters))
	tick := k.NewEvent("observer.tick")
	k.Method("observer.sampler", func() {
		d.sampleNow(k.Now())
		tick.Notify(interval)
	}).Sensitive(tick).DontInitialize()
	tick.Notify(interval)
}

// sampleNow reads the probes into the scratch sample and fans it out.
func (d *dispatcher) sampleNow(t sim.Time) {
	d.scratch.TempC = d.plant.tempC()
	d.scratch.SoC = d.pack.SoC()
	for i, m := range d.meters {
		d.scratch.PowerW[i] = m.Power()
	}
	for _, o := range d.obs {
		o.Sample(t, &d.scratch)
	}
}

// runEnd forwards the completed Result.
func (d *dispatcher) runEnd(res *Result) {
	for _, o := range d.obs {
		o.RunEnd(res)
	}
}

// err returns the first observer error.
func (d *dispatcher) err() error {
	for _, o := range d.obs {
		if err := o.Err(); err != nil {
			return err
		}
	}
	return nil
}
