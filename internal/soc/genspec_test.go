package soc

import (
	"reflect"
	"testing"

	"godpm/internal/battery"
	"godpm/internal/sim"
	"godpm/internal/stats"
	"godpm/internal/workload"
)

// genConfig is a small two-IP config driven entirely by generator specs:
// one closed-loop heavy-tail IP and one open-loop MMPP IP.
func genConfig(seed workload.Seed, numTasks int) Config {
	return Config{
		IPs: []IPSpec{
			{Name: "ht", Gen: workload.HeavyTailSpec(workload.DefaultHeavyTail(seed.Split("ht"), numTasks))},
			{Name: "mm", Gen: workload.MMPPSpec(workload.DefaultMMPP(seed.Split("mm"), numTasks))},
		},
		Policy: PolicyDPM,
	}
}

func TestGenSpecMaterializesInNormalize(t *testing.T) {
	cfg := genConfig(workload.NewSeed(1), 8)
	norm, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if len(norm.IPs[0].Sequence) != 8 || len(norm.IPs[0].Arrivals) != 0 {
		t.Fatalf("closed-loop spec materialized to %d seq / %d arr",
			len(norm.IPs[0].Sequence), len(norm.IPs[0].Arrivals))
	}
	if len(norm.IPs[1].Arrivals) != 8 || len(norm.IPs[1].Sequence) != 0 {
		t.Fatalf("open-loop spec materialized to %d seq / %d arr",
			len(norm.IPs[1].Sequence), len(norm.IPs[1].Arrivals))
	}
	// The receiver is untouched: materialization fills the copy only.
	if len(cfg.IPs[0].Sequence) != 0 || len(cfg.IPs[1].Arrivals) != 0 {
		t.Fatal("Normalized mutated the receiver's IP specs")
	}
	// Idempotence: normalizing the normalized config reproduces the same
	// workload bit for bit.
	again, err := norm.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(norm.IPs, again.IPs) {
		t.Fatal("Normalized is not idempotent for generated workloads")
	}
	// Invalid generator parameters surface as normalization errors.
	bad := cfg
	bad.IPs = append([]IPSpec(nil), bad.IPs...)
	bad.IPs[0].Gen.HeavyTail.Shape = 0.5
	if _, err := bad.Normalized(); err == nil {
		t.Fatal("invalid generator spec normalized without error")
	}
}

// TestGenSpecRunDeterministic pins the seed-reproducibility contract: the
// same Spec (same workload.Seed) produces bit-identical results run after
// run, and exactly the result of pre-materializing the workload by hand.
func TestGenSpecRunDeterministic(t *testing.T) {
	cfg := genConfig(workload.NewSeed(7), 12)
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.EnergyJ != r2.EnergyJ || r1.AvgTempC != r2.AvgTempC || r1.Deltas != r2.Deltas {
		t.Fatalf("same seed diverged: (%v,%v,%v) vs (%v,%v,%v)",
			r1.EnergyJ, r1.AvgTempC, r1.Deltas, r2.EnergyJ, r2.AvgTempC, r2.Deltas)
	}

	// Hand-materialized equivalent.
	manual := cfg
	manual.IPs = append([]IPSpec(nil), manual.IPs...)
	for i := range manual.IPs {
		seq, arr, err := manual.IPs[i].Gen.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		manual.IPs[i].Sequence, manual.IPs[i].Arrivals = seq, arr
		manual.IPs[i].Gen = workload.Spec{}
	}
	r3, err := Run(manual)
	if err != nil {
		t.Fatal(err)
	}
	if r1.EnergyJ != r3.EnergyJ || r1.AvgTempC != r3.AvgTempC || r1.Deltas != r3.Deltas {
		t.Fatalf("generated run differs from hand-materialized run: (%v,%v,%v) vs (%v,%v,%v)",
			r1.EnergyJ, r1.AvgTempC, r1.Deltas, r3.EnergyJ, r3.AvgTempC, r3.Deltas)
	}

	// A different seed is a different simulation.
	other := genConfig(workload.NewSeed(8), 12)
	r4, err := Run(other)
	if err != nil {
		t.Fatal(err)
	}
	if r1.EnergyJ == r4.EnergyJ && r1.Deltas == r4.Deltas {
		t.Fatal("different seeds produced an identical result")
	}
}

// TestGenTickAllocFree pins that generated workloads keep the kernel hot
// path allocation-free: generation runs entirely inside Normalized, so an
// accountant tick on a Gen-driven config allocates nothing per event,
// exactly like a hand-built config.
func TestGenTickAllocFree(t *testing.T) {
	cfg, err := genConfig(workload.NewSeed(3), 4).Normalized()
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	model, err := cfg.Battery.build()
	if err != nil {
		t.Fatal(err)
	}
	pack := battery.NewPack(k, "battery", model, battery.DefaultThresholds(), cfg.Battery.Mains)
	plant := buildThermalPlant(k, &cfg, []string{"ht", "mm"})
	meters := []*stats.EnergyMeter{stats.NewEnergyMeter(k, "ht"), stats.NewEnergyMeter(k, "mm")}
	busEnergy := 0.0
	meters[0].SetPower(0.4)
	meters[1].SetPower(0.2)
	acct := newAccountant(k, &cfg, pack, plant, meters, &busEnergy, nil)
	acct.start()
	for i := 0; i < 64; i++ {
		if err := k.Run(k.Now() + cfg.SampleInterval); err != nil {
			t.Fatal(err)
		}
	}
	got := testing.AllocsPerRun(1000, func() {
		if err := k.Run(k.Now() + cfg.SampleInterval); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Errorf("tick with generated workload config: %v allocs/event, want 0", got)
	}
}
