package soc

import (
	"godpm/internal/battery"
	"godpm/internal/gem"
	"godpm/internal/power"
	"godpm/internal/sim"
	"godpm/internal/stats"
)

// accountant is the simulation's per-tick spine: every SampleInterval it
// feeds the battery and the thermal plant with the average power drawn
// since the last sample and streams the die temperature into a
// time-weighted accumulator.
//
// It is the hottest non-kernel path of a run — 1.2M ticks for the paper's
// 120 s horizon at the default 100 µs interval — so it holds all of its
// state in pre-sized fields, streams the temperature statistics in O(1)
// memory (no per-tick Series append), and its sample step is pinned to
// zero allocations by TestAccountantTickAllocFree.
type accountant struct {
	k     *sim.Kernel
	pack  *battery.Pack
	plant *thermalPlant

	meters    []*stats.EnergyMeter
	busEnergy *float64 // bus energy meter owned by Run

	// DC-DC regulator between battery and rail (nil: battery sees the load
	// directly); railV is the intermediate rail voltage.
	reg   *power.Regulator
	railV float64

	// g is re-evaluated every tick when gemReeval is set (bus-occupancy
	// limited configurations need the periodic poll).
	g         *gem.GEM
	gemReeval bool

	interval sim.Time
	// intervalSecs caches interval.Seconds(): the per-tick dt is almost
	// always exactly one interval, and reusing the converted value saves
	// three float divisions per sample without changing a bit (the same
	// operation on the same input yields the same value).
	intervalSecs float64
	tick         *sim.Event
	// noFastForward skips the GapPeriodic registration, forcing per-tick
	// scheduling (RunOptions.NoFastForward).
	noFastForward bool

	temp   stats.TimeWeighted // streaming time-weighted die temperature
	lastE  float64            // total energy at the previous sample
	lastEs []float64          // per-IP energy at the previous sample
	perIP  []float64          // per-IP power scratch for plant.step
	lastAt sim.Time           // time of the previous sample

	// Early-stop machinery (RunOptions.StopWhen and context cancellation).
	// All of it is inert — one branch per tick — when unused, which keeps
	// the bare-run tick allocation-free and bit-identical.
	stops      []StopCondition
	done       <-chan struct{} // ctx.Done(); nil for background contexts
	probe      Probe           // reused every evaluation; no allocation
	stopReason string          // Reason of the condition that fired
	canceled   bool            // ctx was cancelled mid-run

	// watches are the forked-run stop sets (see RunForked): each watch is
	// one fork member's StopWhen list, evaluated every tick against the
	// shared trajectory. A watch that fires stops the kernel — like a solo
	// stop — but the session then snapshots just that member and resumes
	// for the rest. nil for solo runs, so the hot path pays one branch.
	watches []*forkWatch
}

// forkWatch tracks one fork member's stop conditions on a shared session.
type forkWatch struct {
	conds []StopCondition
	fired string // Reason of the first matching condition; "" while live
}

// newAccountant wires an accountant for the assembled SoC. It seeds the
// temperature stream with the initial die temperature at t=0, exactly as
// the Series-based accountant did.
func newAccountant(k *sim.Kernel, cfg *Config, pack *battery.Pack, plant *thermalPlant,
	meters []*stats.EnergyMeter, busEnergy *float64, g *gem.GEM) *accountant {
	a := &accountant{
		k: k, pack: pack, plant: plant,
		meters: meters, busEnergy: busEnergy,
		reg:          cfg.Regulator,
		railV:        cfg.IPs[0].Profile.On[0].Vdd,
		g:            g,
		interval:     cfg.SampleInterval,
		intervalSecs: cfg.SampleInterval.Seconds(),
		lastEs:       make([]float64, len(meters)),
		perIP:        make([]float64, len(meters)),
	}
	a.gemReeval = g != nil && cfg.GEM.BusOccupancyLimit > 0
	a.temp.Add(0, cfg.InitialTempC)
	return a
}

// start registers the tick method and schedules the first sample.
//
// The accountant also opts its tick into the kernel's idle fast-forward:
// whenever the tick is the only live timed notification — no process
// runnable, no delta pending, nothing else scheduled — the kernel calls
// the catch-up body (the method minus the self re-notification) at
// interval steps directly, skipping the heap/fire/eval machinery per
// instant. The same sample arithmetic runs at the same instants, so
// results are bit-identical to ticked execution; runs with observers
// never fast-forward because the observer sampler's tick shares every
// sample instant, which keeps Observer.Sample firing per tick.
func (a *accountant) start() {
	a.tick = a.k.NewEvent("accountant.tick")
	a.k.Method("accountant", func() {
		a.sample()
		a.checkStop()
		a.tick.Notify(a.interval)
	}).Sensitive(a.tick).DontInitialize()
	if !a.noFastForward {
		a.k.GapPeriodic(a.tick, a.interval, func() {
			a.sample()
			a.checkStop()
		})
	}
	a.tick.Notify(a.interval)
}

// checkStop polls the context and evaluates the stop conditions against the
// state integrated by the sample that just ran. It fires at most once; the
// kernel then halts at the end of the current delta cycle. Must not
// allocate when no conditions or context are registered.
func (a *accountant) checkStop() {
	if a.stopReason != "" || a.canceled {
		return
	}
	if a.done != nil {
		select {
		case <-a.done:
			a.canceled = true
			a.k.Stop()
			return
		default:
		}
	}
	if len(a.watches) > 0 {
		a.checkWatches()
	}
	if len(a.stops) == 0 {
		return
	}
	a.fillProbe()
	for i := range a.stops {
		if a.stops[i].Eval(&a.probe) {
			a.stopReason = a.stops[i].Reason
			a.k.Stop()
			return
		}
	}
}

// fillProbe refreshes the reusable probe from the just-integrated state.
func (a *accountant) fillProbe() {
	a.probe.Now = a.k.Now()
	a.probe.TempC = a.plant.tempC()
	a.probe.SoC = a.pack.SoC()
	a.probe.Battery = a.pack.Status()
	a.probe.EnergyJ = a.lastE
}

// checkWatches evaluates every live fork watch. Unlike the solo list it
// does not short-circuit: every member whose condition holds at this
// instant fires now, exactly as each member's solo run would have, even
// when several members cross in the same tick. Any firing stops the
// kernel so the session can snapshot the fired members and resume.
// Evaluation is pure (conditions only read the probe), so watching extra
// members never changes the shared trajectory.
func (a *accountant) checkWatches() {
	a.fillProbe()
	fired := false
	for _, w := range a.watches {
		if w.fired != "" {
			continue
		}
		for i := range w.conds {
			if w.conds[i].Eval(&a.probe) {
				w.fired = w.conds[i].Reason
				fired = true
				break
			}
		}
	}
	if fired {
		a.k.Stop()
	}
}

// totalEnergy sums the bus meter and every IP meter up to now.
func (a *accountant) totalEnergy() float64 {
	e := *a.busEnergy
	for _, m := range a.meters {
		e += m.EnergyJ()
	}
	return e
}

// batteryDraw maps the load power to the power the battery supplies.
func (a *accountant) batteryDraw(pLoad float64) float64 {
	if a.reg == nil {
		return pLoad
	}
	return a.reg.InputPower(pLoad, a.railV)
}

// sample integrates one interval: average power into the battery and the
// thermal plant, temperature into the streaming statistics. Zero-length
// intervals (a second call at the same instant, e.g. the final partial
// sample after a tick) are no-ops. Must not allocate.
func (a *accountant) sample() {
	now := a.k.Now()
	dt := now - a.lastAt
	if dt <= 0 {
		return
	}
	secs := a.intervalSecs
	if dt != a.interval {
		secs = dt.Seconds()
	}
	// One pass over the meters computes the total and the per-IP split:
	// the summation order (bus first, then meters in slice order) is the
	// same as totalEnergy's, so the result is bit-identical to the old
	// two-pass version while settling each meter once instead of twice.
	e := *a.busEnergy
	for i, m := range a.meters {
		me := m.EnergyJ()
		e += me
		a.perIP[i] = (me - a.lastEs[i]) / secs
		a.lastEs[i] = me
	}
	pAvg := (e - a.lastE) / secs
	a.pack.Step(a.batteryDraw(pAvg), dt)
	a.plant.step(pAvg, a.perIP, dt)
	a.lastE = e
	a.lastAt = now
	a.temp.Add(now, a.plant.tempC())
	if a.gemReeval {
		a.g.Reevaluate()
	}
}
