package soc

import (
	"sync"
	"testing"

	"godpm/internal/acpi"
	"godpm/internal/gem"
	"godpm/internal/power"
	"godpm/internal/sim"
	"godpm/internal/workload"
)

// smallConfig returns a quick single-IP configuration for tests.
func smallConfig(policy PolicyKind, numTasks int) Config {
	return Config{
		IPs: []IPSpec{{
			Name:     "ip0",
			Sequence: workload.HighActivity(42, numTasks).MustGenerate(),
		}},
		Policy:   policy,
		Battery:  DefaultBattery(0.95),
		BusWords: 32,
	}
}

func TestAlwaysOnBaselineRuns(t *testing.T) {
	res, err := Run(smallConfig(PolicyAlwaysOn, 20))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.TasksDone != 20 {
		t.Fatalf("Completed=%v TasksDone=%d", res.Completed, res.TasksDone)
	}
	if res.EnergyJ <= 0 {
		t.Fatalf("EnergyJ = %v", res.EnergyJ)
	}
	if res.AvgTempC <= res.AmbientC {
		t.Fatalf("AvgTempC %v not above ambient %v", res.AvgTempC, res.AmbientC)
	}
	if res.Ledger.Len() != 20 {
		t.Fatalf("ledger has %d records", res.Ledger.Len())
	}
}

func TestDPMRunsAndSavesEnergy(t *testing.T) {
	base, err := Run(smallConfig(PolicyAlwaysOn, 30))
	if err != nil {
		t.Fatal(err)
	}
	dpm, err := Run(smallConfig(PolicyDPM, 30))
	if err != nil {
		t.Fatal(err)
	}
	if !dpm.Completed {
		t.Fatal("DPM run did not complete")
	}
	if dpm.EnergyJ >= base.EnergyJ {
		t.Fatalf("DPM energy %v not below baseline %v", dpm.EnergyJ, base.EnergyJ)
	}
	if dpm.Duration < base.Duration {
		t.Fatalf("DPM duration %v below baseline %v (slower states must not speed it up)",
			dpm.Duration, base.Duration)
	}
	st, ok := dpm.LEMStats["ip0"]
	if !ok {
		t.Fatal("missing LEM stats")
	}
	total := 0
	for _, n := range st.OnDecisions {
		total += n
	}
	if total != 30 {
		t.Fatalf("LEM decided %d tasks, want 30 (%v)", total, st.OnDecisions)
	}
}

func TestAllPoliciesComplete(t *testing.T) {
	for _, p := range []PolicyKind{PolicyAlwaysOn, PolicyDPM, PolicyTimeout, PolicyGreedy, PolicyOracle} {
		res, err := Run(smallConfig(p, 15))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !res.Completed || res.TasksDone != 15 {
			t.Fatalf("%s: Completed=%v TasksDone=%d", p, res.Completed, res.TasksDone)
		}
	}
}

func TestGEMMultiIPRun(t *testing.T) {
	cfg := Config{
		IPs: []IPSpec{
			{Name: "ip1", Sequence: workload.HighActivity(1, 15).MustGenerate(), StaticPriority: 1},
			{Name: "ip2", Sequence: workload.HighActivity(2, 15).MustGenerate(), StaticPriority: 2},
			{Name: "ip3", Sequence: workload.LowActivity(3, 15).MustGenerate(), StaticPriority: 3},
			{Name: "ip4", Sequence: workload.LowActivity(4, 15).MustGenerate(), StaticPriority: 4},
		},
		Policy:   PolicyDPM,
		UseGEM:   true,
		Battery:  DefaultBattery(0.95),
		BusWords: 32,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.TasksDone != 60 {
		t.Fatalf("Completed=%v TasksDone=%d", res.Completed, res.TasksDone)
	}
	if res.GEMEvaluations == 0 {
		t.Fatal("GEM never evaluated")
	}
	if res.BusOccupancy <= 0 {
		t.Fatal("bus never used")
	}
}

func TestGEMDisablesLowPriorityWhenBatteryLow(t *testing.T) {
	// Battery starting Low, temperature Low: only priorities 1 and 2 may
	// run at first. With a KiBaM battery the class recovers during quiet
	// phases, so low-priority IPs eventually run and the sim completes.
	cfg := Config{
		IPs: []IPSpec{
			{Name: "ip1", Sequence: workload.HighActivity(1, 10).MustGenerate(), StaticPriority: 1},
			{Name: "ip4", Sequence: workload.LowActivity(4, 10).MustGenerate(), StaticPriority: 4},
		},
		Policy:   PolicyDPM,
		UseGEM:   true,
		Battery:  DefaultBattery(0.28), // Low
		BusWords: 32,
		Horizon:  30 * sim.Sec,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.LEMStats["ip4"]
	if st.ParkEvents == 0 {
		t.Fatalf("low-priority IP was never parked: %+v", st)
	}
}

func TestHorizonTruncatesRun(t *testing.T) {
	cfg := smallConfig(PolicyAlwaysOn, 5000)
	cfg.Horizon = 50 * sim.Ms
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("run should have hit the horizon")
	}
	if res.Duration > cfg.Horizon {
		t.Fatalf("Duration %v beyond horizon", res.Duration)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	bad := smallConfig(PolicyAlwaysOn, 5)
	bad.UseGEM = true
	if _, err := Run(bad); err == nil {
		t.Error("GEM with non-DPM policy accepted")
	}
	empty := smallConfig(PolicyDPM, 5)
	empty.IPs[0].Sequence = nil
	if _, err := Run(empty); err == nil {
		t.Error("empty sequence accepted")
	}
	unknown := smallConfig("quantum", 5)
	if _, err := Run(unknown); err == nil {
		t.Error("unknown policy accepted")
	}
	badBatt := smallConfig(PolicyDPM, 5)
	badBatt.Battery.Kind = "fusion"
	if _, err := Run(badBatt); err == nil {
		t.Error("unknown battery kind accepted")
	}
}

func TestEnergyByIPSumsToTotal(t *testing.T) {
	res, err := Run(smallConfig(PolicyDPM, 10))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, e := range res.EnergyByIP {
		sum += e
	}
	sum += res.BusEnergyJ
	if diff := res.EnergyJ - sum; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("EnergyJ %v != sum of parts %v", res.EnergyJ, sum)
	}
}

func TestBatteryDischargesDuringRun(t *testing.T) {
	cfg := smallConfig(PolicyAlwaysOn, 60)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalSoC >= 0.95 {
		t.Fatalf("FinalSoC %v did not drop", res.FinalSoC)
	}
}

func TestDPMDeterministic(t *testing.T) {
	a, err := Run(smallConfig(PolicyDPM, 25))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(PolicyDPM, 25))
	if err != nil {
		t.Fatal(err)
	}
	if a.EnergyJ != b.EnergyJ || a.Duration != b.Duration || a.TasksDone != b.TasksDone {
		t.Fatalf("non-deterministic: %v/%v vs %v/%v", a.EnergyJ, a.Duration, b.EnergyJ, b.Duration)
	}
}

func TestOracleBeatsOrMatchesTimeoutOnEnergy(t *testing.T) {
	to, err := Run(smallConfig(PolicyTimeout, 40))
	if err != nil {
		t.Fatal(err)
	}
	or, err := Run(smallConfig(PolicyOracle, 40))
	if err != nil {
		t.Fatal(err)
	}
	// The oracle never wastes the timeout period idling at full power.
	if or.EnergyJ > to.EnergyJ*1.02 {
		t.Fatalf("oracle energy %v clearly above timeout's %v", or.EnergyJ, to.EnergyJ)
	}
}

func TestInitialStateRespected(t *testing.T) {
	cfg := smallConfig(PolicyDPM, 5)
	cfg.IPs[0].InitialState = acpi.SL2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run from sleeping initial state did not complete")
	}
}

func TestPerIPThermalRun(t *testing.T) {
	cfg := Config{
		IPs: []IPSpec{
			{Name: "hot", Sequence: workload.HighActivity(1, 15).MustGenerate(), StaticPriority: 1},
			{Name: "cool", Sequence: workload.LowActivity(2, 15).MustGenerate(), StaticPriority: 2},
		},
		Policy:       PolicyDPM,
		PerIPThermal: true,
		Battery:      DefaultBattery(0.95),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.TasksDone != 30 {
		t.Fatalf("Completed=%v TasksDone=%d", res.Completed, res.TasksDone)
	}
	if res.AvgTempC <= res.AmbientC {
		t.Fatalf("AvgTempC %v not above ambient", res.AvgTempC)
	}
}

func TestPerIPThermalWithGEM(t *testing.T) {
	cfg := Config{
		IPs: []IPSpec{
			{Name: "a", Sequence: workload.HighActivity(1, 10).MustGenerate(), StaticPriority: 1},
			{Name: "b", Sequence: workload.HighActivity(2, 10).MustGenerate(), StaticPriority: 2},
		},
		Policy:       PolicyDPM,
		UseGEM:       true,
		PerIPThermal: true,
		Battery:      DefaultBattery(0.95),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.GEMEvaluations == 0 {
		t.Fatalf("Completed=%v evals=%d", res.Completed, res.GEMEvaluations)
	}
}

func TestRegulatorDrainsBatteryFaster(t *testing.T) {
	base := smallConfig(PolicyAlwaysOn, 20)
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withReg := smallConfig(PolicyAlwaysOn, 20)
	withReg.Regulator = power.DefaultRegulator()
	reg, err := Run(withReg)
	if err != nil {
		t.Fatal(err)
	}
	if reg.FinalSoC >= plain.FinalSoC {
		t.Fatalf("regulator losses missing: SoC %v vs %v", reg.FinalSoC, plain.FinalSoC)
	}
	// The SoC-side energy accounting is unchanged (losses are upstream).
	if reg.EnergyJ != plain.EnergyJ {
		t.Fatalf("regulator changed SoC energy: %v vs %v", reg.EnergyJ, plain.EnergyJ)
	}
}

func TestPeukertBatteryKind(t *testing.T) {
	cfg := smallConfig(PolicyAlwaysOn, 15)
	cfg.Battery = BatteryConfig{Kind: "peukert", CapacityJ: 20, InitialSoC: 0.9,
		PeukertExponent: 1.3, PeukertRefPower: 0.5}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.FinalSoC >= 0.9 {
		t.Fatalf("Completed=%v FinalSoC=%v", res.Completed, res.FinalSoC)
	}
}

func TestGEMBusOccupancyLimitWired(t *testing.T) {
	// With an absurdly low occupancy limit, any bus traffic marks the SoC
	// congested and low-priority IPs get parked at least once.
	cfg := Config{
		IPs: []IPSpec{
			{Name: "a", Sequence: workload.HighActivity(1, 20).MustGenerate(), StaticPriority: 1},
			{Name: "b", Sequence: workload.HighActivity(2, 20).MustGenerate(), StaticPriority: 4},
		},
		Policy:   PolicyDPM,
		UseGEM:   true,
		GEM:      gem.Config{HighPriorityCutoff: 2, BusOccupancyLimit: 1e-9},
		Battery:  DefaultBattery(0.95),
		BusWords: 4096, // long transfers keep occupancy measurably positive
		Horizon:  30 * sim.Sec,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LEMStats["b"].ParkEvents == 0 {
		t.Fatalf("low-priority IP never parked under congestion: %+v", res.LEMStats["b"])
	}
	if res.LEMStats["a"].OnDecisions == nil || res.TasksDone == 0 {
		t.Fatal("nothing ran")
	}
}

func TestNewPredictorKindsRun(t *testing.T) {
	for _, kind := range []PredictorKind{PredictorAdaptive, PredictorQuantile} {
		cfg := smallConfig(PolicyDPM, 12)
		cfg.LEM = LEMOptions{Predictor: kind}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !res.Completed {
			t.Fatalf("%s: incomplete", kind)
		}
	}
}

// TestRunConcurrentSharedConfig runs the same Config value from several
// goroutines at once (as internal/engine's worker pool does). Under -race
// this catches any shared mutable state — in particular, Run must not
// mutate the caller's IPs backing array while filling defaults.
func TestRunConcurrentSharedConfig(t *testing.T) {
	cfg := smallConfig(PolicyDPM, 15)
	cfg.IPs[0].Name = "" // force fillDefaults to touch the spec
	const n = 4
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Run(cfg)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if results[i].EnergyJ != results[0].EnergyJ || results[i].Duration != results[0].Duration {
			t.Fatalf("run %d diverged: E=%v vs %v, D=%v vs %v",
				i, results[i].EnergyJ, results[0].EnergyJ, results[i].Duration, results[0].Duration)
		}
	}
	if cfg.IPs[0].Name != "" {
		t.Fatal("Run mutated the caller's IPs slice")
	}
}
