package soc

import (
	"testing"

	"godpm/internal/battery"
	"godpm/internal/sim"
	"godpm/internal/stats"
	"godpm/internal/task"
	"godpm/internal/workload"
)

// buildAccountant assembles a minimal kernel + accountant: one battery
// pack, the single-node thermal plant and two idle energy meters, driven
// only by the accountant's own tick event.
func buildAccountant(t *testing.T) (*sim.Kernel, *accountant, sim.Time) {
	t.Helper()
	cfg := Config{
		IPs: []IPSpec{
			{Name: "a", Sequence: workload.Sequence{{Task: task.Task{ID: 1, Instructions: 100}, IdleAfter: sim.Ms}}},
			{Name: "b", Sequence: workload.Sequence{{Task: task.Task{ID: 1, Instructions: 100}, IdleAfter: sim.Ms}}},
		},
	}
	cfg, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	model, err := cfg.Battery.build()
	if err != nil {
		t.Fatal(err)
	}
	pack := battery.NewPack(k, "battery", model, battery.DefaultThresholds(), cfg.Battery.Mains)
	plant := buildThermalPlant(k, &cfg, []string{"a", "b"})
	meters := []*stats.EnergyMeter{stats.NewEnergyMeter(k, "a"), stats.NewEnergyMeter(k, "b")}
	busEnergy := 0.0
	meters[0].SetPower(0.4)
	meters[1].SetPower(0.2)
	acct := newAccountant(k, &cfg, pack, plant, meters, &busEnergy, nil)
	acct.start()
	return k, acct, cfg.SampleInterval
}

// TestAccountantTickAllocFree pins one full accountant tick — kernel timed
// event, method activation, battery step, thermal step, temperature
// streaming, re-notify — to zero allocations.
func TestAccountantTickAllocFree(t *testing.T) {
	k, _, interval := buildAccountant(t)
	// Warm up: grow kernel buffers and settle battery signal activity.
	for i := 0; i < 64; i++ {
		if err := k.Run(k.Now() + interval); err != nil {
			t.Fatal(err)
		}
	}
	got := testing.AllocsPerRun(1000, func() {
		if err := k.Run(k.Now() + interval); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Errorf("accountant tick: %v allocs, want 0", got)
	}
}

// TestAccountantStreamsStatistics checks the streaming accumulator against
// the retained Series over the same tick sequence: identical mean and peak,
// bit for bit.
func TestAccountantStreamsStatistics(t *testing.T) {
	k, acct, interval := buildAccountant(t)
	var ref stats.Series
	ref.Add(0, acct.temp.Last()) // the seeded initial temperature
	refPeak := acct.temp.Last()
	const ticks = 500
	for i := 0; i < ticks; i++ {
		if err := k.Run(k.Now() + interval); err != nil {
			t.Fatal(err)
		}
		tc := acct.plant.tempC()
		ref.Add(k.Now(), tc)
		if tc > refPeak {
			refPeak = tc
		}
	}
	if got, want := acct.temp.MeanUntil(k.Now()), ref.MeanUntil(k.Now()); got != want {
		t.Errorf("streaming mean = %v, Series mean = %v", got, want)
	}
	if got := acct.temp.Max(); got != refPeak {
		t.Errorf("streaming peak = %v, reference peak = %v", got, refPeak)
	}
	if acct.temp.Len() != ref.Len() {
		t.Errorf("streaming saw %d samples, Series %d", acct.temp.Len(), ref.Len())
	}
	// Temperature must actually have moved (0.6 W into the default node),
	// or the comparison above is vacuous.
	if acct.temp.Max() <= acct.temp.Min() {
		t.Errorf("temperature never rose: max %v, min %v", acct.temp.Max(), acct.temp.Min())
	}
}

// TestEnergyMeterAllocFree pins the meter's settle/set/add hot path.
func TestEnergyMeterAllocFree(t *testing.T) {
	k := sim.NewKernel()
	m := stats.NewEnergyMeter(k, "m")
	e := k.NewEvent("t")
	k.Method("advance", func() {}).Sensitive(e).DontInitialize()
	got := testing.AllocsPerRun(1000, func() {
		e.Notify(sim.Us)
		if err := k.Run(k.Now() + sim.Us); err != nil {
			t.Fatal(err)
		}
		m.SetPower(0.5)
		m.AddPower(0.1)
		m.AddEnergy(1e-6)
		if m.EnergyJ() <= 0 {
			t.Fatal("no energy accumulated")
		}
	})
	if got != 0 {
		t.Errorf("EnergyMeter hot path: %v allocs, want 0", got)
	}
}
