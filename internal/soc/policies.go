package soc

import (
	"godpm/internal/acpi"
	"godpm/internal/ip"
	"godpm/internal/policy"
	"godpm/internal/sim"
)

// Thin constructors keeping the policy package out of Run's switch body.

func policyAlwaysOn(psm *acpi.PSM) ip.Manager { return policy.NewAlwaysOn(psm) }

func policyTimeout(k *sim.Kernel, psm *acpi.PSM, timeout sim.Time, state acpi.State) ip.Manager {
	return policy.NewFixedTimeout(k, psm, timeout, state)
}

func policyGreedy(psm *acpi.PSM, state acpi.State) ip.Manager {
	return policy.NewGreedy(psm, state)
}

func policyOracle(psm *acpi.PSM) ip.Manager { return policy.NewOracle(psm) }
