// Package soc assembles and runs complete system-on-chip simulations: the
// architecture of the paper's Fig. 1 — N functional IPs, each with a PSM
// and a LEM, an optional GEM, a battery, a thermal sensor and a shared bus
// — on the discrete-event kernel, with exact energy accounting and the
// measurements Table 2 is computed from.
package soc

import (
	"context"
	"fmt"
	"time"

	"godpm/internal/acpi"
	"godpm/internal/battery"
	"godpm/internal/bus"
	"godpm/internal/gem"
	"godpm/internal/lem"
	"godpm/internal/power"
	"godpm/internal/rules"
	"godpm/internal/sim"
	"godpm/internal/stats"
	"godpm/internal/thermal"
	"godpm/internal/workload"
)

// PolicyKind selects the energy-management policy driving every IP.
type PolicyKind string

// Available policies.
const (
	// PolicyDPM is the paper's architecture: LEM per IP, optional GEM.
	PolicyDPM PolicyKind = "dpm"
	// PolicyAlwaysOn is the Table 2 baseline: ON1, never sleep.
	PolicyAlwaysOn PolicyKind = "alwayson"
	// PolicyTimeout is classic fixed-timeout DPM.
	PolicyTimeout PolicyKind = "timeout"
	// PolicyGreedy sleeps immediately on idleness.
	PolicyGreedy PolicyKind = "greedy"
	// PolicyOracle sleeps with perfect idle knowledge.
	PolicyOracle PolicyKind = "oracle"
)

// PredictorKind selects the LEM idle-time predictor.
type PredictorKind string

// Available predictors.
const (
	PredictorEWMA     PredictorKind = "ewma"
	PredictorLast     PredictorKind = "last"
	PredictorPerfect  PredictorKind = "perfect"
	PredictorAdaptive PredictorKind = "adaptive"
	PredictorQuantile PredictorKind = "quantile"
)

// BatteryConfig selects and parameterises the battery model.
type BatteryConfig struct {
	// Kind: "linear", "kibam" or "peukert".
	Kind       string
	CapacityJ  float64
	InitialSoC float64
	Mains      bool
	// Linear rate-capacity penalty (0 disables).
	RateK    float64
	RefPower float64
	// KiBaM parameters.
	KiBaMC float64
	KiBaMK float64
	// Peukert parameters ("peukert" kind).
	PeukertExponent float64
	PeukertRefPower float64
}

// DefaultBattery returns a 20 J KiBaM battery at the given initial state of
// charge — small enough that the experiments' loads move the class.
func DefaultBattery(initialSoC float64) BatteryConfig {
	return BatteryConfig{
		Kind: "kibam", CapacityJ: 20, InitialSoC: initialSoC,
		KiBaMC: 0.35, KiBaMK: 0.08,
	}
}

func (b BatteryConfig) build() (battery.Model, error) {
	switch b.Kind {
	case "linear":
		m := battery.NewLinear(b.CapacityJ, b.InitialSoC)
		m.RateK = b.RateK
		if b.RefPower > 0 {
			m.RefPower = b.RefPower
		}
		return m, nil
	case "kibam":
		return battery.NewKiBaM(b.CapacityJ, b.InitialSoC, b.KiBaMC, b.KiBaMK), nil
	case "peukert":
		exp, ref := b.PeukertExponent, b.PeukertRefPower
		if exp == 0 {
			exp = 1.1
		}
		if ref == 0 {
			ref = 1.0
		}
		return battery.NewPeukert(b.CapacityJ, b.InitialSoC, exp, ref), nil
	default:
		return nil, fmt.Errorf("soc: unknown battery kind %q", b.Kind)
	}
}

// LEMOptions configures the per-IP LEMs when Policy == PolicyDPM.
type LEMOptions struct {
	// Table is the selection policy; nil uses rules.Table1().
	Table *rules.Table
	// Predictor kind (default EWMA) and its smoothing factor.
	Predictor PredictorKind
	Alpha     float64
	// BreakEvenGating gates sleeping on the break-even comparison
	// (default true; Disable for the ablation).
	DisableBreakEven bool
	AllowSoftOff     bool
}

func (o LEMOptions) makeConfig() lem.Config {
	cfg := lem.NewConfig()
	if o.Table != nil {
		cfg.Table = o.Table
	}
	alpha := o.Alpha
	if alpha == 0 {
		alpha = 0.5
	}
	switch o.Predictor {
	case PredictorLast:
		cfg.Predictor = &lem.LastValue{}
	case PredictorPerfect:
		cfg.Predictor = lem.Perfect{}
	case PredictorAdaptive:
		cfg.Predictor = lem.NewAdaptive(0.9, 0.1, 0.3)
	case PredictorQuantile:
		cfg.Predictor = lem.NewWindowQuantile(16, 0.25)
	default:
		cfg.Predictor = lem.NewEWMA(alpha)
	}
	cfg.BreakEvenGating = !o.DisableBreakEven
	cfg.AllowSoftOff = o.AllowSoftOff
	return cfg
}

// IPSpec describes one IP block.
type IPSpec struct {
	Name string
	// Profile is the power characterisation; nil uses the default.
	Profile *power.Profile
	// Sequence is the closed-loop workload; generate it with the workload
	// package. Exactly one of Sequence, Arrivals and Gen must be set.
	Sequence workload.Sequence
	// Arrivals is the open-loop workload (absolute service-request times).
	Arrivals workload.ArrivalSequence
	// Gen, when its Kind is set, generates the workload during config
	// normalization: the spec is pure value data (generator kind, seed and
	// parameters), so two configs with equal specs describe the same
	// simulation and share an engine cache key. Closed-loop generators
	// fill Sequence, open-loop ones fill Arrivals; a set Gen is
	// authoritative and overwrites both. Generation happens entirely
	// before the kernel starts — it adds nothing to the tick.
	Gen workload.Spec
	// StaticPriority is the GEM priority (1 = highest); defaults to its
	// position + 1.
	StaticPriority int
	// InitialState of the PSM (default ON1).
	InitialState acpi.State
}

// Config describes a complete simulation.
type Config struct {
	IPs    []IPSpec
	Policy PolicyKind
	LEM    LEMOptions
	// UseGEM attaches a global energy manager (PolicyDPM only).
	UseGEM bool
	GEM    gem.Config

	Battery      BatteryConfig
	Thermal      thermal.Params
	InitialTempC float64

	// PerIPThermal switches from the paper's single die sensor to a
	// compact multi-node model: one thermal node per IP on a shared
	// spreader. Each LEM then observes its own node's sensor and the GEM
	// observes the hottest node. ThermalNetwork parameterises the model
	// (zero value → thermal.DefaultNetworkParams).
	PerIPThermal   bool
	ThermalNetwork thermal.NetworkParams

	// Regulator, when non-nil, models the DC-DC converter between the
	// battery and the SoC: the battery supplies InputPower(load) instead
	// of the load itself. The converter's heat is dissipated off-die (it
	// does not enter the thermal node). The intermediate rail is the first
	// IP profile's ON1 voltage.
	Regulator *power.Regulator

	// Bus configuration; BusWords == 0 disables the bus entirely.
	Bus      bus.Config
	BusWords int

	// Timeout policy parameters.
	Timeout           sim.Time
	TimeoutSleepState acpi.State
	// Greedy policy parameter.
	GreedySleepState acpi.State

	// SampleInterval is the battery/thermal integration step
	// (default 100 µs).
	SampleInterval sim.Time
	// Horizon bounds the simulation (default 120 s); a run that hits the
	// horizon reports Completed == false.
	Horizon sim.Time
	// BaseClockHz converts simulated time to the paper's "cycles"
	// (default: the ON1 frequency of the first IP).
	BaseClockHz float64
}

// Result carries everything the experiment harness needs.
type Result struct {
	// EnergyJ is the total energy (IPs incl. transitions + bus).
	EnergyJ    float64
	EnergyByIP map[string]float64
	BusEnergyJ float64

	// AvgTempC is the time-weighted mean die temperature; AmbientC the
	// configured ambient.
	AvgTempC  float64
	PeakTempC float64
	AmbientC  float64

	Ledger    *stats.Ledger
	Duration  sim.Time
	Completed bool
	TasksDone int

	// StopReason is the Reason of the RunOptions.StopWhen condition that
	// ended the run early ("" when the run completed or hit the horizon).
	StopReason string

	// Deltas is the kernel's delta-cycle count — a scheduling checksum:
	// two runs of the same configuration must agree on it exactly, which
	// the determinism tests use to pin kernel rewrites to the old
	// scheduler's behaviour.
	Deltas uint64

	// Cycles is Duration × BaseClockHz; WallSeconds the host time spent —
	// together they give the paper's Kcycle/s simulation speed.
	Cycles      float64
	WallSeconds float64

	FinalSoC           float64
	FinalBatteryStatus battery.Status

	LEMStats       map[string]lem.Stats
	GEMEvaluations int
	FanSwitches    int
	BusOccupancy   float64
}

// KCyclesPerSec returns the simulation speed in the paper's unit.
func (r *Result) KCyclesPerSec() float64 {
	if r.WallSeconds <= 0 {
		return 0
	}
	return r.Cycles / r.WallSeconds / 1000
}

// Normalized returns a copy of the configuration with every defaultable
// field filled in, exactly as Run will interpret it. Two configurations
// that normalize identically produce identical simulations, which makes
// the normalized form the right input for content-addressed caching
// (internal/engine hashes it). The IPs slice and its specs are copied —
// filling defaults never mutates the receiver — but Profile pointers and
// Sequence/Arrivals backing arrays stay shared; treat them as immutable
// (Run only reads them).
func (c Config) Normalized() (Config, error) {
	c.IPs = append([]IPSpec(nil), c.IPs...)
	if err := c.fillDefaults(); err != nil {
		return Config{}, err
	}
	return c, nil
}

func (c *Config) fillDefaults() error {
	if len(c.IPs) == 0 {
		return fmt.Errorf("soc: no IPs configured")
	}
	if c.Policy == "" {
		c.Policy = PolicyDPM
	}
	if c.Battery.Kind == "" {
		c.Battery = DefaultBattery(0.95)
	}
	if c.Thermal == (thermal.Params{}) {
		c.Thermal = thermal.DefaultParams()
	}
	if c.InitialTempC == 0 {
		c.InitialTempC = c.Thermal.AmbientC
	}
	if c.Bus == (bus.Config{}) {
		c.Bus = bus.DefaultConfig()
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = 100 * sim.Us
	}
	if c.Horizon == 0 {
		c.Horizon = 120 * sim.Sec
	}
	if c.Timeout == 0 {
		c.Timeout = 5 * sim.Ms
	}
	if c.TimeoutSleepState == acpi.State(0) || c.TimeoutSleepState.IsOn() {
		c.TimeoutSleepState = acpi.SL2
	}
	if c.GreedySleepState == acpi.State(0) || c.GreedySleepState.IsOn() {
		c.GreedySleepState = acpi.SL1
	}
	for i := range c.IPs {
		spec := &c.IPs[i]
		if spec.Name == "" {
			spec.Name = fmt.Sprintf("ip%d", i)
		}
		if spec.Profile == nil {
			spec.Profile = power.DefaultProfile()
		}
		if err := spec.Profile.Validate(); err != nil {
			return fmt.Errorf("soc: %s: %w", spec.Name, err)
		}
		if spec.Gen.Kind != workload.GenNone {
			// Gen is authoritative: it (re)generates the workload whenever
			// set. Generation is deterministic, so normalizing an
			// already-normalized config reproduces the same workload and
			// Normalized stays idempotent. The spec's own defaults are
			// filled first so a field left zero and the same field set to
			// its documented default share one engine cache key.
			spec.Gen = spec.Gen.Normalized()
			seq, arr, err := spec.Gen.Materialize()
			if err != nil {
				return fmt.Errorf("soc: %s: %w", spec.Name, err)
			}
			spec.Sequence, spec.Arrivals = seq, arr
		}
		if (len(spec.Sequence) > 0) == (len(spec.Arrivals) > 0) {
			return fmt.Errorf("soc: %s: exactly one of Sequence and Arrivals must be set", spec.Name)
		}
		if err := spec.Sequence.Validate(); err != nil {
			return fmt.Errorf("soc: %s: %w", spec.Name, err)
		}
		if err := spec.Arrivals.Validate(); err != nil {
			return fmt.Errorf("soc: %s: %w", spec.Name, err)
		}
		if spec.StaticPriority == 0 {
			spec.StaticPriority = i + 1
		}
		if spec.InitialState == acpi.State(0) {
			spec.InitialState = acpi.ON1
		}
	}
	if c.BaseClockHz == 0 {
		c.BaseClockHz = c.IPs[0].Profile.On[0].FreqHz
	}
	if c.UseGEM && c.Policy != PolicyDPM {
		return fmt.Errorf("soc: GEM requires the DPM policy")
	}
	// Normalize the manager options too, so Normalized() upholds the
	// "field left zero == field set to its documented default" equivalence
	// that engine.Fingerprint keys on. Options that cannot influence the
	// run (LEM under a non-DPM policy, GEM when unused) are zeroed.
	if c.Policy == PolicyDPM {
		if c.LEM.Table == nil {
			c.LEM.Table = rules.Table1()
		}
		if c.LEM.Predictor == "" {
			c.LEM.Predictor = PredictorEWMA
		}
		switch c.LEM.Predictor {
		case PredictorLast, PredictorPerfect, PredictorAdaptive, PredictorQuantile:
			// Alpha is only consumed by the EWMA predictor.
			c.LEM.Alpha = 0
		default:
			if c.LEM.Alpha == 0 {
				c.LEM.Alpha = 0.5
			}
		}
	} else {
		c.LEM = LEMOptions{}
	}
	if c.UseGEM {
		if c.GEM.HighPriorityCutoff <= 0 {
			c.GEM.HighPriorityCutoff = gem.DefaultConfig().HighPriorityCutoff
		}
	} else {
		c.GEM = gem.Config{}
	}
	if c.Policy != PolicyTimeout {
		c.Timeout = 0
		c.TimeoutSleepState = acpi.State(0)
	}
	if c.Policy != PolicyGreedy {
		c.GreedySleepState = acpi.State(0)
	}
	if c.Regulator != nil {
		if err := c.Regulator.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Run builds the SoC and simulates it to completion (all sequences done) or
// to the horizon. It is RunWith with a background context and no options.
//
// Run is safe for concurrent use: every call builds its own kernel and
// components, the configuration is normalized into a private copy before
// any mutation, and nothing in this package or the packages it assembles
// holds package-level mutable state. Sharing one Config value (including
// its IPs, Sequences and Profile pointers) across simultaneous Runs is
// fine as long as callers do not mutate it mid-run.
func Run(cfg Config) (*Result, error) {
	return RunWith(context.Background(), cfg, RunOptions{})
}

// RunWith builds the SoC and simulates it like Run, with run-time options:
// opts.Observers stream instrumentation callbacks (see Observer) and
// opts.StopWhen ends the run early on battery, thermal, energy or
// wall-clock conditions. Options are pure run-time concerns — the Result of
// an observed run is bit-identical to a bare Run of the same Config (stop
// conditions excepted, since they genuinely shorten the run).
//
// Cancellation is sample-granular: ctx is polled at every SampleInterval
// tick, and a cancelled run returns ctx.Err().
func RunWith(ctx context.Context, cfg Config, opts RunOptions) (*Result, error) {
	// A run shorter than one SampleInterval never reaches the in-run
	// cancellation poll, so honour an already-ended context up front.
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	s, err := newSession(ctx, cfg, opts)
	if err != nil {
		return nil, err
	}
	defer s.k.Shutdown()

	if err := s.k.Run(cfg.Horizon); err != nil {
		return nil, err
	}
	wall := time.Since(s.wallStart).Seconds()
	if s.acct.canceled {
		return nil, ctx.Err()
	}

	// Final partial sample so energy/temperature cover the full duration.
	// Solo runs end here, so sampling on the live state is fine; forked
	// runs (RunForked) instead snapshot the same arithmetic onto copies at
	// every cut point, because the session keeps running past each cut.
	acct, k := s.acct, s.k
	acct.sample()

	res := &Result{
		EnergyByIP: make(map[string]float64, len(s.meters)),
		Ledger:     s.ledger,
		Duration:   k.Now(),
		AmbientC:   s.plant.ambient,
		BusEnergyJ: s.busEnergyJ,
		StopReason: acct.stopReason,
	}
	for i, m := range s.meters {
		e := m.EnergyJ()
		res.EnergyByIP[cfg.IPs[i].Name] = e
		res.EnergyJ += e
	}
	res.EnergyJ += s.busEnergyJ
	res.AvgTempC = acct.temp.MeanUntil(k.Now())
	res.PeakTempC = acct.temp.Max()
	res.Completed = true
	for _, b := range s.ips {
		res.TasksDone += b.TasksDone()
		if !b.Finished() {
			res.Completed = false
		}
	}
	res.Cycles = res.Duration.Seconds() * cfg.BaseClockHz
	res.WallSeconds = wall
	res.Deltas = k.DeltaCount()
	res.FinalSoC = s.pack.SoC()
	res.FinalBatteryStatus = s.pack.Status()
	res.LEMStats = make(map[string]lem.Stats, len(s.lems))
	for name, l := range s.lems {
		res.LEMStats[name] = l.Stats()
	}
	if s.g != nil {
		res.GEMEvaluations = s.g.Evaluations()
		res.FanSwitches = s.g.FanSwitches()
	}
	if s.theBus != nil {
		res.BusOccupancy = s.theBus.Occupancy()
	}
	if s.disp != nil {
		s.disp.runEnd(res)
		if err := s.disp.err(); err != nil {
			return nil, fmt.Errorf("soc: observer: %w", err)
		}
	}
	return res, nil
}
