package soc

import (
	"context"
	"testing"
	"time"

	"godpm/internal/sim"
)

// compareForkMember asserts that a forked member's Result is bit-identical
// to the solo run of the same configuration (WallSeconds excepted — it is
// host timing — and Ledger compared by length).
func compareForkMember(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.EnergyJ != want.EnergyJ {
		t.Errorf("%s: EnergyJ %v != solo %v", label, got.EnergyJ, want.EnergyJ)
	}
	if got.BusEnergyJ != want.BusEnergyJ {
		t.Errorf("%s: BusEnergyJ %v != solo %v", label, got.BusEnergyJ, want.BusEnergyJ)
	}
	if got.AvgTempC != want.AvgTempC {
		t.Errorf("%s: AvgTempC %v != solo %v", label, got.AvgTempC, want.AvgTempC)
	}
	if got.PeakTempC != want.PeakTempC {
		t.Errorf("%s: PeakTempC %v != solo %v", label, got.PeakTempC, want.PeakTempC)
	}
	if got.Duration != want.Duration {
		t.Errorf("%s: Duration %v != solo %v", label, got.Duration, want.Duration)
	}
	if got.Deltas != want.Deltas {
		t.Errorf("%s: Deltas %d != solo %d", label, got.Deltas, want.Deltas)
	}
	if got.TasksDone != want.TasksDone {
		t.Errorf("%s: TasksDone %d != solo %d", label, got.TasksDone, want.TasksDone)
	}
	if got.FinalSoC != want.FinalSoC {
		t.Errorf("%s: FinalSoC %v != solo %v", label, got.FinalSoC, want.FinalSoC)
	}
	if got.FinalBatteryStatus != want.FinalBatteryStatus {
		t.Errorf("%s: FinalBatteryStatus %v != solo %v", label, got.FinalBatteryStatus, want.FinalBatteryStatus)
	}
	if got.Completed != want.Completed {
		t.Errorf("%s: Completed %v != solo %v", label, got.Completed, want.Completed)
	}
	if got.StopReason != want.StopReason {
		t.Errorf("%s: StopReason %q != solo %q", label, got.StopReason, want.StopReason)
	}
	if got.Ledger.Len() != want.Ledger.Len() {
		t.Errorf("%s: ledger %d records != solo %d", label, got.Ledger.Len(), want.Ledger.Len())
	}
	for name, e := range want.EnergyByIP {
		if got.EnergyByIP[name] != e {
			t.Errorf("%s: EnergyByIP[%s] %v != solo %v", label, name, got.EnergyByIP[name], e)
		}
	}
	for name, ls := range want.LEMStats {
		gs, ok := got.LEMStats[name]
		if !ok {
			t.Errorf("%s: missing LEMStats[%s]", label, name)
			continue
		}
		if gs.ParkEvents != ls.ParkEvents || gs.ParkedTime != ls.ParkedTime ||
			len(gs.OnDecisions) != len(ls.OnDecisions) || len(gs.SleepEntries) != len(ls.SleepEntries) {
			t.Errorf("%s: LEMStats[%s] %+v != solo %+v", label, name, gs, ls)
		}
	}
	if got.BusOccupancy != want.BusOccupancy {
		t.Errorf("%s: BusOccupancy %v != solo %v", label, got.BusOccupancy, want.BusOccupancy)
	}
}

// TestRunForkedMatchesSoloHorizons pins the sweep warm-start's central
// contract: members that differ only in horizon, simulated off one shared
// trajectory, produce bit-identical Results to solo runs — including cuts
// that fall mid-sample-interval (partial final integration on copies) and
// a member that runs past workload completion.
func TestRunForkedMatchesSoloHorizons(t *testing.T) {
	cfg := smallConfig(PolicyDPM, 40)

	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Completed {
		t.Fatal("reference run did not complete")
	}

	// Cut one member mid-interval, one at a tick boundary, one past
	// completion (default horizon).
	h1 := full.Duration/3 + 37*sim.Us
	h2 := (full.Duration / 2 / (100 * sim.Us)) * (100 * sim.Us)
	members := []ForkMember{{Horizon: h1}, {Horizon: h2}, {}}

	forked, err := RunForked(context.Background(), cfg, members)
	if err != nil {
		t.Fatal(err)
	}
	if len(forked) != len(members) {
		t.Fatalf("got %d results for %d members", len(forked), len(members))
	}

	for i, m := range members {
		soloCfg := cfg
		soloCfg.Horizon = m.Horizon
		solo, err := Run(soloCfg)
		if err != nil {
			t.Fatal(err)
		}
		compareForkMember(t, sim.Time(i).String(), forked[i], solo)
	}
	if !forked[2].Completed || forked[2].Duration != full.Duration {
		t.Fatalf("past-completion member: Completed=%v Duration=%v want %v",
			forked[2].Completed, forked[2].Duration, full.Duration)
	}
}

// TestRunForkedMatchesSoloStops runs members whose cuts are stop
// conditions rather than horizons — including two members whose
// thresholds cross in the same tick and one whose condition never fires —
// and pins them bit-identical to solo runs with the same StopWhen.
func TestRunForkedMatchesSoloStops(t *testing.T) {
	cfg := smallConfig(PolicyAlwaysOn, 60)

	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	budget := full.EnergyJ / 2
	members := []ForkMember{
		{StopWhen: []StopCondition{StopOnEnergyBudget(budget)}},
		{StopWhen: []StopCondition{StopOnEnergyBudget(budget * 1.000001)}},
		{StopWhen: []StopCondition{StopOnEnergyBudget(full.EnergyJ * 10)}},
	}

	forked, err := RunForked(context.Background(), cfg, members)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range members {
		solo, err := RunWith(context.Background(), cfg, RunOptions{StopWhen: m.StopWhen})
		if err != nil {
			t.Fatal(err)
		}
		compareForkMember(t, m.StopWhen[0].Reason, forked[i], solo)
		_ = i
	}
	if forked[0].StopReason == "" {
		t.Fatal("budget member did not stop early")
	}
	if forked[2].StopReason != "" || !forked[2].Completed {
		t.Fatalf("unreachable-budget member: StopReason=%q Completed=%v",
			forked[2].StopReason, forked[2].Completed)
	}
}

// TestRunForkedRejects checks the documented non-forkable inputs.
func TestRunForkedRejects(t *testing.T) {
	cfg := smallConfig(PolicyDPM, 5)
	if _, err := RunForked(context.Background(), cfg, nil); err == nil {
		t.Error("no members: want error")
	}
	if _, err := RunForked(context.Background(), cfg,
		[]ForkMember{{StopWhen: []StopCondition{StopOnWallClock(time.Hour)}}}); err == nil {
		t.Error("volatile stop condition: want error")
	}
	gcfg := smallConfig(PolicyDPM, 5)
	gcfg.UseGEM = true
	gcfg.GEM.HighPriorityCutoff = 1
	gcfg.GEM.BusOccupancyLimit = 0.5
	if _, err := RunForked(context.Background(), gcfg, []ForkMember{{}}); err == nil {
		t.Error("bus-occupancy GEM polling: want error")
	}
}
