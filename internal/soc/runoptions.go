package soc

import (
	"fmt"
	"time"

	"godpm/internal/battery"
	"godpm/internal/sim"
)

// RunOptions carries the run-time (as opposed to model) parameters of one
// simulation: how to watch it and when to cut it short. Options never
// reshape the simulated system — Config alone determines the physics — so
// two runs of the same Config with different observers produce bit-identical
// Results. Stop conditions do change the Result (they end the run early);
// the batch engine folds their Reason strings into its cache key.
type RunOptions struct {
	// Observers receive the streaming instrumentation callbacks.
	Observers []Observer
	// StopWhen ends the run early as soon as any condition holds; the
	// first matching condition's Reason is recorded in Result.StopReason.
	// Conditions are evaluated once per SampleInterval, after the battery
	// and thermal state have been integrated.
	StopWhen []StopCondition

	// NoFastForward disables the kernel's idle fast-forward, forcing the
	// per-tick scheduling machinery over idle gaps. Fast-forward is
	// provably bit-identical to ticked execution (the same sample
	// arithmetic runs at the same instants — see sim.Kernel.GapPeriodic),
	// so this knob exists for verification (the equivalence property
	// tests) and benchmarking (measuring the machinery it skips), not for
	// correctness; it is deliberately not part of the engine cache key.
	NoFastForward bool
}

// Volatile reports whether any stop condition depends on host timing, in
// which case the run's outcome is not a pure function of Config+StopWhen
// and must never be cached (the batch engine checks this).
func (o RunOptions) Volatile() bool {
	for _, c := range o.StopWhen {
		if c.Volatile {
			return true
		}
	}
	return false
}

// Probe is the live view a StopCondition evaluates against, refreshed at
// every sample tick after battery/thermal integration.
type Probe struct {
	// Now is the current simulated time.
	Now sim.Time
	// TempC is the die temperature (hottest node under PerIPThermal).
	TempC float64
	// SoC is the battery state of charge in [0,1]; Battery its class.
	SoC     float64
	Battery battery.Status
	// EnergyJ is the total energy drawn so far (IPs + bus).
	EnergyJ float64

	wallStart time.Time
}

// Wall returns the host time elapsed since the run started. It is computed
// on demand so conditions that ignore wall time cost nothing per tick.
func (p *Probe) Wall() time.Duration { return time.Since(p.wallStart) }

// StopCondition ends a run early. Build conditions with the StopOn*
// constructors, or literally for custom predicates.
type StopCondition struct {
	// Reason labels the condition. It is recorded in Result.StopReason and
	// folded into the batch engine's cache key, so it must uniquely
	// describe the condition's behaviour (the constructors bake their
	// thresholds in).
	Reason string
	// Volatile marks conditions whose outcome depends on host timing
	// (e.g. wall-clock budgets); the engine never caches volatile jobs.
	Volatile bool
	// Eval reports whether the run should stop now.
	Eval func(p *Probe) bool
}

// StopOnBatteryEmpty ends the run when the battery class reaches Empty —
// the "run to battery death" experiment the fixed horizon could not
// express.
func StopOnBatteryEmpty() StopCondition {
	return StopCondition{
		Reason: "battery-empty",
		Eval:   func(p *Probe) bool { return p.Battery == battery.Empty },
	}
}

// StopOnTemperature ends the run when the die reaches ceilC — a thermal
// ceiling for runaway-detection experiments.
func StopOnTemperature(ceilC float64) StopCondition {
	return StopCondition{
		Reason: fmt.Sprintf("temp>=%g", ceilC),
		Eval:   func(p *Probe) bool { return p.TempC >= ceilC },
	}
}

// StopOnEnergyBudget ends the run once the SoC has drawn budgetJ joules.
func StopOnEnergyBudget(budgetJ float64) StopCondition {
	return StopCondition{
		Reason: fmt.Sprintf("energy>=%gJ", budgetJ),
		Eval:   func(p *Probe) bool { return p.EnergyJ >= budgetJ },
	}
}

// StopOnSoC ends the run when the state of charge falls to the given
// fraction — a softer battery bound than StopOnBatteryEmpty.
func StopOnSoC(floor float64) StopCondition {
	return StopCondition{
		Reason: fmt.Sprintf("soc<=%g", floor),
		Eval:   func(p *Probe) bool { return p.SoC <= floor },
	}
}

// StopOnWallClock ends the run after d of host time — a safety valve for
// grids over configurations that may simulate slowly. The condition is
// Volatile: the batch engine will not cache jobs carrying it.
func StopOnWallClock(d time.Duration) StopCondition {
	return StopCondition{
		Reason:   fmt.Sprintf("wall>=%s", d),
		Volatile: true,
		Eval:     func(p *Probe) bool { return p.Wall() >= d },
	}
}
