package soc

import (
	"context"
	"fmt"
	"sort"
	"time"

	"godpm/internal/acpi"
	"godpm/internal/battery"
	"godpm/internal/bus"
	"godpm/internal/gem"
	"godpm/internal/ip"
	"godpm/internal/lem"
	"godpm/internal/sim"
	"godpm/internal/stats"
)

// session is one fully assembled SoC simulation that can be advanced to
// successive cut points. RunWith builds one, runs it to the horizon and
// reads the result off the live state; RunForked builds one and advances
// it through several members' horizons/stop conditions, snapshotting a
// Result at each cut without perturbing the live trajectory — the sweep
// warm-start: members share the simulated prefix instead of each
// re-running it from t=0.
type session struct {
	cfg Config // normalized; the accountant and observers point into it
	k   *sim.Kernel

	pack       *battery.Pack
	plant      *thermalPlant
	theBus     *bus.Bus
	busEnergyJ float64
	ledger     *stats.Ledger
	meters     []*stats.EnergyMeter
	ips        []*ip.IP
	lems       map[string]*lem.LEM
	g          *gem.GEM
	disp       *dispatcher
	acct       *accountant
	ipNames    []string

	wallStart time.Time
}

// newSession assembles the SoC described by the (already normalized)
// configuration, registers the accountant and schedules the first sample.
// The kernel has not run yet; callers own k.Shutdown.
func newSession(ctx context.Context, cfg Config, opts RunOptions) (*session, error) {
	s := &session{cfg: cfg}
	k := sim.NewKernel()
	s.k = k

	model, err := cfg.Battery.build()
	if err != nil {
		return nil, err
	}
	s.pack = battery.NewPack(k, "battery", model, battery.DefaultThresholds(), cfg.Battery.Mains)
	s.ipNames = make([]string, len(cfg.IPs))
	for i := range cfg.IPs {
		s.ipNames[i] = cfg.IPs[i].Name
	}
	s.plant = buildThermalPlant(k, &s.cfg, s.ipNames)

	if cfg.BusWords > 0 {
		s.theBus = bus.New(k, "bus", cfg.Bus)
		s.theBus.OnEnergy(func(j float64) { s.busEnergyJ += j })
	}

	s.ledger = &stats.Ledger{}
	s.meters = make([]*stats.EnergyMeter, len(cfg.IPs))
	psms := make([]*acpi.PSM, len(cfg.IPs))
	s.lems = make(map[string]*lem.LEM, len(cfg.IPs))
	s.ips = make([]*ip.IP, len(cfg.IPs))

	if cfg.UseGEM {
		s.g = gem.New(k, "gem", cfg.GEM, s.pack, s.plant.gemView())
	}

	if len(opts.Observers) > 0 {
		s.disp = &dispatcher{obs: opts.Observers, meters: s.meters}
	}

	for i, spec := range cfg.IPs {
		s.meters[i] = stats.NewEnergyMeter(k, spec.Name)
		psms[i] = acpi.NewPSM(k, spec.Name, spec.Profile, spec.InitialState)

		var mgr ip.Manager
		switch cfg.Policy {
		case PolicyDPM:
			l := lem.New(k, spec.Name+".lem", psms[i], s.pack, s.plant.lemSource(i), cfg.LEM.makeConfig())
			if s.g != nil {
				meter := s.meters[i]
				id, err := s.g.Register(spec.Name, spec.StaticPriority, meter.Power)
				if err != nil {
					return nil, err
				}
				l.AttachGEM(s.g, id)
			}
			s.lems[spec.Name] = l
			mgr = l
		case PolicyAlwaysOn:
			mgr = policyAlwaysOn(psms[i])
		case PolicyTimeout:
			mgr = policyTimeout(k, psms[i], cfg.Timeout, cfg.TimeoutSleepState)
		case PolicyGreedy:
			mgr = policyGreedy(psms[i], cfg.GreedySleepState)
		case PolicyOracle:
			mgr = policyOracle(psms[i])
		default:
			return nil, fmt.Errorf("soc: unknown policy %q", cfg.Policy)
		}

		ipCfg := ip.Config{
			Name:        spec.Name,
			Profile:     spec.Profile,
			Sequence:    spec.Sequence,
			Arrivals:    spec.Arrivals,
			Manager:     mgr,
			PSM:         psms[i],
			Meter:       s.meters[i],
			Ledger:      s.ledger,
			Bus:         s.theBus,
			BusWords:    cfg.BusWords,
			BusPriority: spec.StaticPriority,
		}
		if s.disp != nil {
			ipCfg.OnTask = s.disp.taskDone
		}
		s.ips[i] = ip.New(k, ipCfg)
	}

	// Instrumentation: hook the dispatcher onto the assembled components
	// and announce the run. The sampler is registered here — before the
	// completion watcher and the accountant — so its tick runs first at
	// every sample instant, exactly where the old CSV sampler sat.
	if s.disp != nil {
		s.disp.attach(psms, s.pack, s.plant)
		initialStates := make([]acpi.State, len(psms))
		for i := range psms {
			initialStates[i] = psms[i].StateSignal().Read()
		}
		s.disp.runStart(&RunInfo{
			Config:         &s.cfg,
			IPs:            s.ipNames,
			InitialStates:  initialStates,
			InitialBattery: s.pack.Status(),
			InitialThermal: s.plant.classSignal().Read(),
			BatterySignal:  s.pack.StatusSignal().Name(),
			ThermalSignal:  s.plant.classSignal().Name(),
		})
		// Fail fast on setup errors (e.g. a trace header that cannot be
		// written) instead of simulating to completion for nothing.
		if err := s.disp.err(); err != nil {
			return nil, fmt.Errorf("soc: observer: %w", err)
		}
		s.disp.startSampler(k, cfg.SampleInterval)
	}

	// Completion watcher: stop the kernel when every IP finished.
	doneEvents := make([]*sim.Event, len(s.ips))
	for i, b := range s.ips {
		doneEvents[i] = b.Done()
	}
	k.Method("completion", func() {
		for _, b := range s.ips {
			if !b.Finished() {
				return
			}
		}
		k.Stop()
	}).Sensitive(doneEvents...).DontInitialize()

	// Power accountant: every SampleInterval, feed the battery and the
	// thermal node with the average power since the last sample and stream
	// the temperature statistics (see accountant.go — O(1) memory, zero
	// allocations per tick).
	if s.g != nil && cfg.GEM.BusOccupancyLimit > 0 && s.theBus != nil {
		s.g.SetBusProbe(s.theBus.Occupancy)
	}
	s.acct = newAccountant(k, &s.cfg, s.pack, s.plant, s.meters, &s.busEnergyJ, s.g)
	s.acct.stops = opts.StopWhen
	s.acct.noFastForward = opts.NoFastForward
	if ctx != nil {
		s.acct.done = ctx.Done()
	}
	s.acct.start()

	s.wallStart = time.Now()
	s.acct.probe.wallStart = s.wallStart
	return s, nil
}

// allFinished reports whether every IP has drained its workload.
func (s *session) allFinished() bool {
	for _, b := range s.ips {
		if !b.Finished() {
			return false
		}
	}
	return true
}

// snapshotResult computes the Result a solo run of this session's config
// would have returned if it ended at the current pause point (the kernel
// must not be mid-Run), without mutating any live state: the final
// partial sample runs on copies — cloned battery model, peeked energy
// meters, peek-stepped thermal plant, a value copy of the temperature
// accumulator — and the ledger and LEM stat maps are deep-copied so later
// simulation cannot leak into the snapshot. The arithmetic mirrors
// accountant.sample + RunWith's epilogue term for term, which the
// fork-equivalence tests pin bit-identically against solo runs.
func (s *session) snapshotResult(stopReason string) *Result {
	k, a := s.k, s.acct
	now := k.Now()

	temp := a.temp // value copy of the streaming accumulator
	finalSoC := s.pack.SoC()
	busE := s.busEnergyJ

	peeks := make([]float64, len(s.meters))
	for i, m := range s.meters {
		peeks[i] = m.PeekEnergyJ()
	}

	if dt := now - a.lastAt; dt > 0 {
		// The final partial sample, on copies (cf. accountant.sample).
		secs := a.intervalSecs
		if dt != a.interval {
			secs = dt.Seconds()
		}
		e := busE
		for _, pe := range peeks {
			e += pe
		}
		pAvg := (e - a.lastE) / secs
		perIP := make([]float64, len(s.meters))
		for i, pe := range peeks {
			perIP[i] = (pe - a.lastEs[i]) / secs
		}
		if !s.pack.Mains() {
			model := s.pack.Model().Clone()
			model.Step(a.batteryDraw(pAvg), dt)
			finalSoC = model.SoC()
		}
		temp.Add(now, s.plant.peekStepTempC(pAvg, perIP, dt))
	}

	res := &Result{
		EnergyByIP: make(map[string]float64, len(s.meters)),
		Ledger:     s.ledger.Clone(),
		Duration:   now,
		AmbientC:   s.plant.ambient,
		BusEnergyJ: busE,
		StopReason: stopReason,
	}
	for i, pe := range peeks {
		res.EnergyByIP[s.cfg.IPs[i].Name] = pe
		res.EnergyJ += pe
	}
	res.EnergyJ += busE
	res.AvgTempC = temp.MeanUntil(now)
	res.PeakTempC = temp.Max()
	res.Completed = true
	for _, b := range s.ips {
		res.TasksDone += b.TasksDone()
		if !b.Finished() {
			res.Completed = false
		}
	}
	res.Cycles = res.Duration.Seconds() * s.cfg.BaseClockHz
	res.WallSeconds = time.Since(s.wallStart).Seconds()
	res.Deltas = k.DeltaCount()
	res.FinalSoC = finalSoC
	res.FinalBatteryStatus = s.pack.Status()
	res.LEMStats = make(map[string]lem.Stats, len(s.lems))
	for name, l := range s.lems {
		st := l.Stats()
		st.OnDecisions = copyIntMap(st.OnDecisions)
		st.SleepEntries = copyIntMap(st.SleepEntries)
		res.LEMStats[name] = st
	}
	if s.g != nil {
		res.GEMEvaluations = s.g.Evaluations()
		res.FanSwitches = s.g.FanSwitches()
	}
	if s.theBus != nil {
		res.BusOccupancy = s.theBus.Occupancy()
	}
	return res
}

func copyIntMap(m map[string]int) map[string]int {
	cp := make(map[string]int, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}

// ForkMember describes one member of a forked run group: how far (or
// until which stop condition) the shared simulation runs for it. All
// members share every other aspect of the configuration.
type ForkMember struct {
	// Horizon bounds this member's run (0 uses the config's normalized
	// horizon). Members are simulated in ascending horizon order off one
	// shared trajectory.
	Horizon sim.Time
	// StopWhen ends this member's run early, exactly as
	// RunOptions.StopWhen would in a solo run. Conditions must be pure
	// functions of the Probe; volatile (wall-clock) conditions are
	// rejected because members snapshot at different host times.
	StopWhen []StopCondition
}

// RunForked simulates cfg once and returns one Result per member, as if
// each member had been run solo via RunWith with its Horizon and StopWhen
// — bit-identically so: members differing only in horizon/stop share one
// trajectory, so the common prefix is simulated once instead of once per
// member ("sweep warm-start"). The kernel pauses at each member's cut
// point (its horizon, its first matching stop condition, or workload
// completion) and a Result is snapshotted there from copies of the live
// state; the run then resumes for the remaining members.
//
// Results are indexed like members. Configurations that poll the GEM
// every sample tick (UseGEM with GEM.BusOccupancyLimit > 0) are not
// forkable — the final partial sample would re-evaluate the live GEM —
// and return an error, as do volatile stop conditions. Cancellation is
// sample-granular, like RunWith.
func RunForked(ctx context.Context, cfg Config, members []ForkMember) ([]*Result, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("soc: RunForked needs at least one member")
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	if cfg.UseGEM && cfg.GEM.BusOccupancyLimit > 0 {
		return nil, fmt.Errorf("soc: RunForked: bus-occupancy GEM polling is not forkable")
	}
	for _, m := range members {
		for _, c := range m.StopWhen {
			if c.Volatile {
				return nil, fmt.Errorf("soc: RunForked: volatile stop condition %q is not forkable", c.Reason)
			}
		}
	}

	s, err := newSession(ctx, cfg, RunOptions{})
	if err != nil {
		return nil, err
	}
	defer s.k.Shutdown()

	// Watch every member's conditions on the shared trajectory and order
	// the pending cuts by horizon.
	type pending struct {
		idx     int
		horizon sim.Time
		watch   *forkWatch
	}
	queue := make([]*pending, len(members))
	for i, m := range members {
		h := m.Horizon
		if h <= 0 {
			h = cfg.Horizon
		}
		p := &pending{idx: i, horizon: h}
		if len(m.StopWhen) > 0 {
			p.watch = &forkWatch{conds: m.StopWhen}
			s.acct.watches = append(s.acct.watches, p.watch)
		}
		queue[i] = p
	}
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].horizon < queue[j].horizon })

	results := make([]*Result, len(members))
	finish := func(p *pending, reason string) {
		results[p.idx] = s.snapshotResult(reason)
		if p.watch != nil {
			p.watch.fired = "snapshotted" // stop evaluating for this member
		}
	}

	for len(queue) > 0 {
		target := queue[0].horizon
		if err := s.k.Run(target); err != nil {
			return nil, err
		}
		if s.acct.canceled {
			return nil, ctx.Err()
		}
		// Members whose stop condition fired at this instant end here,
		// exactly as their solo runs would have.
		rest := queue[:0]
		for _, p := range queue {
			switch {
			case p.watch != nil && p.watch.fired != "" && p.watch.fired != "snapshotted":
				finish(p, p.watch.fired)
			case s.k.Now() >= p.horizon:
				finish(p, "")
			default:
				rest = append(rest, p)
			}
		}
		queue = rest
		if len(queue) > 0 && s.allFinished() {
			// Workload completion stopped the kernel (the completion
			// watcher's delta cycle has already run, so the delta count
			// matches a solo run's): every remaining member's solo run
			// would have ended at this same instant.
			for _, p := range queue {
				finish(p, "")
			}
			queue = queue[:0]
		}
	}
	return results, nil
}
