package soc

import (
	"godpm/internal/sim"
	"godpm/internal/thermal"
)

// thermalPlant abstracts over the two thermal configurations: the paper's
// single die node, or a per-IP network on a shared spreader.
type thermalPlant struct {
	single  *thermal.Node
	network *thermal.Network
	sensors []*thermal.NetworkSensor
	hot     *thermal.NetworkHottest
	ambient float64
}

// buildThermalPlant constructs the configured plant.
func buildThermalPlant(k *sim.Kernel, cfg *Config, names []string) *thermalPlant {
	if !cfg.PerIPThermal {
		return &thermalPlant{
			single:  thermal.NewNode(k, "die", cfg.Thermal, cfg.InitialTempC),
			ambient: cfg.Thermal.AmbientC,
		}
	}
	np := cfg.ThermalNetwork
	if np == (thermal.NetworkParams{}) {
		np = thermal.DefaultNetworkParams()
	}
	net := thermal.NewNetwork(k, "die", np, names, cfg.InitialTempC)
	th := thermal.SensorThresholds{
		MediumAboveC: cfg.Thermal.MediumAboveC,
		HighAboveC:   cfg.Thermal.HighAboveC,
		HysteresisC:  cfg.Thermal.HysteresisC,
	}
	hot, sensors := thermal.AttachSensors(k, "die", net, th)
	return &thermalPlant{network: net, sensors: sensors, hot: hot, ambient: np.AmbientC}
}

// gemView returns the SoC-level source the GEM observes (with fan control).
func (tp *thermalPlant) gemView() thermal.FanSource {
	if tp.single != nil {
		return tp.single
	}
	return tp.hot
}

// lemSource returns the per-IP source LEM i observes.
func (tp *thermalPlant) lemSource(i int) thermal.Source {
	if tp.single != nil {
		return tp.single
	}
	return tp.sensors[i]
}

// step integrates one accountant interval: total power for the single
// node, the per-IP split for the network.
func (tp *thermalPlant) step(total float64, perIP []float64, dt sim.Time) {
	if tp.single != nil {
		tp.single.Step(total, dt)
		return
	}
	tp.network.Step(perIP, dt)
}

// peekStepTempC returns the temperature step(total, perIP, dt) would
// leave tempC() reporting, without mutating the plant — the snapshot
// path's non-perturbing final partial integration.
func (tp *thermalPlant) peekStepTempC(total float64, perIP []float64, dt sim.Time) float64 {
	if tp.single != nil {
		return tp.single.PeekStepTempC(total, dt)
	}
	return tp.network.PeekStepHottest(perIP, dt)
}

// tempC returns the reported die temperature (hottest node for networks).
func (tp *thermalPlant) tempC() float64 {
	if tp.single != nil {
		return tp.single.TempC()
	}
	_, hot := tp.network.Hottest()
	return hot
}

// classSignal returns the SoC-level class signal (for tracing).
func (tp *thermalPlant) classSignal() *sim.Signal[thermal.Class] {
	return tp.gemView().ClassSignal()
}
