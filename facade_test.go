// Tests of the public godpm façade: the root package must expose enough
// surface to assemble, run, observe and batch-execute simulations without
// reaching into internal packages.
package godpm_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"godpm"
)

func TestRunThroughFacade(t *testing.T) {
	seq := godpm.HighActivity(9, 10).MustGenerate()
	res, err := godpm.Run(godpm.Config{
		IPs:     []godpm.IPSpec{{Name: "cpu", Sequence: seq}},
		Policy:  godpm.PolicyDPM,
		Battery: godpm.DefaultBattery(0.95),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.TasksDone != 10 {
		t.Fatalf("Completed=%v TasksDone=%d", res.Completed, res.TasksDone)
	}
}

// countObserver counts callbacks through the façade's Observer alias.
type countObserver struct {
	godpm.NopObserver
	starts, samples, tasks, ends int
}

func (o *countObserver) RunStart(*godpm.RunInfo)                { o.starts++ }
func (o *countObserver) Sample(godpm.Time, *godpm.Sample)       { o.samples++ }
func (o *countObserver) TaskDone(godpm.Time, *godpm.TaskRecord) { o.tasks++ }
func (o *countObserver) RunEnd(*godpm.Result)                   { o.ends++ }

func TestRunWithThroughFacade(t *testing.T) {
	seq := godpm.HighActivity(9, 10).MustGenerate()
	obs := &countObserver{}
	res, err := godpm.RunWith(context.Background(), godpm.Config{
		IPs:     []godpm.IPSpec{{Name: "cpu", Sequence: seq}},
		Policy:  godpm.PolicyDPM,
		Battery: godpm.DefaultBattery(0.95),
	}, godpm.RunOptions{
		Observers: []godpm.Observer{obs},
		StopWhen:  []godpm.StopCondition{godpm.StopOnTemperature(500)}, // never fires
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != "" {
		t.Fatalf("StopReason = %q, want empty", res.StopReason)
	}
	if obs.starts != 1 || obs.ends != 1 {
		t.Fatalf("starts=%d ends=%d, want 1/1", obs.starts, obs.ends)
	}
	if obs.tasks != 10 {
		t.Fatalf("observed %d tasks, want 10", obs.tasks)
	}
	if obs.samples == 0 {
		t.Fatal("no periodic samples observed")
	}
}

func TestScenarioAccess(t *testing.T) {
	tn := godpm.DefaultTuning()
	if got := len(godpm.Scenarios(tn)); got != 6 {
		t.Fatalf("Scenarios = %d, want 6", got)
	}
	s, err := godpm.ScenarioByID("A1", tn)
	if err != nil || s.ID != "A1" {
		t.Fatalf("ScenarioByID = %v,%v", s.ID, err)
	}
	base := godpm.Baseline(s)
	if base.Policy != godpm.PolicyAlwaysOn {
		t.Fatal("Baseline policy wrong")
	}
	if out := godpm.Topology(s); !strings.Contains(out, "PSM") {
		t.Fatalf("Topology output: %q", out)
	}
}

func TestEngineThroughFacade(t *testing.T) {
	seq := godpm.HighActivity(3, 8).MustGenerate()
	cfg := godpm.Config{IPs: []godpm.IPSpec{{Name: "cpu", Sequence: seq}}}
	var plan godpm.Plan
	plan.Add("one", cfg).AddWith("two", cfg, godpm.RunOptions{})
	// One worker: job "one" must finish (and populate the cache) before
	// job "two" starts, making the hit count deterministic.
	eng := godpm.NewEngine(godpm.EngineOptions{Workers: 1})
	results, err := eng.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Result == nil {
		t.Fatalf("results: %+v", results)
	}
	// Identical configs share a fingerprint, so one of the two jobs is
	// cache-served within the same plan.
	if st := eng.Stats(); st.Hits != 1 || st.Runs != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 run", st)
	}
	key, err := godpm.Fingerprint(cfg)
	if err != nil || key == "" {
		t.Fatalf("Fingerprint: %q, %v", key, err)
	}
	if d := godpm.ResultDigest(results[0].Result); d == "" {
		t.Fatal("empty result digest")
	}
}

// TestBoundedCachesThroughFacade exercises the serving-layer cache
// exports: a bounded LRU engine cache and a bounded disk cache, with
// eviction counters surfacing in EngineStats.
func TestBoundedCachesThroughFacade(t *testing.T) {
	lru := godpm.NewLRUCache(godpm.LRUOptions{MaxEntries: 2, Shards: 1})
	eng := godpm.NewEngine(godpm.EngineOptions{Workers: 1, Cache: lru})
	var plan godpm.Plan
	for _, seed := range []int64{1, 2, 3} {
		seq := godpm.HighActivity(seed, 8).MustGenerate()
		plan.Add(fmt.Sprintf("s%d", seed), godpm.Config{IPs: []godpm.IPSpec{{Name: "cpu", Sequence: seq}}})
	}
	if _, err := eng.Run(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.CacheEntries != 2 || st.Evictions != 1 {
		t.Fatalf("stats %+v, want 2 entries / 1 eviction under a 2-entry cap", st)
	}

	disk, err := godpm.NewDiskCacheWith(t.TempDir(), godpm.DiskCacheOptions{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := godpm.NewCacheRecord("cafe0123", &godpm.Result{EnergyJ: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := disk.Put("cafe0123", rec); err != nil {
		t.Fatal(err)
	}
	got, ok := disk.Get("cafe0123")
	if !ok {
		t.Fatal("disk round trip missed")
	}
	if r, err := got.Result(); err != nil || r.EnergyJ != 1 {
		t.Fatalf("disk round trip: err=%v r=%+v", err, r)
	}
}

func TestTable1Facade(t *testing.T) {
	tbl := godpm.Table1()
	if !tbl.Total() {
		t.Fatal("Table1 not total")
	}
	parsed, err := godpm.ParseRules(godpm.Table1DSL)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != tbl.Len() {
		t.Fatalf("parsed %d rules, want %d", parsed.Len(), tbl.Len())
	}
	if _, err := godpm.ParseRules("nonsense"); err == nil {
		t.Fatal("bad script accepted")
	}
}

func TestFormatTable2Facade(t *testing.T) {
	out := godpm.FormatTable2([]godpm.Row{{ID: "A1"}})
	if !strings.Contains(out, "A1") || !strings.Contains(out, "Energy saving") {
		t.Fatalf("FormatTable2 output: %q", out)
	}
}

func TestVersionSet(t *testing.T) {
	if godpm.Version == "" {
		t.Fatal("empty version")
	}
}
