// Fast-forward equivalence property test: the kernel's idle fast-forward
// (soc runs opt their accountant tick into sim.GapPeriodic) is a pure
// scheduling shortcut, so every configuration must produce bit-identical
// results with it on (the default) and off (RunOptions.NoFastForward).
// The kernel-level contract is pinned in internal/sim; this test sweeps
// the property across the full stack — generator kinds, policies, battery
// chemistries, multi-IP GEM configurations, bus-occupancy polling and
// early-stop conditions — over several seeds each.
package godpm_test

import (
	"context"
	"testing"

	"godpm/internal/engine"
	"godpm/internal/gem"
	"godpm/internal/sim"
	"godpm/internal/soc"
	"godpm/internal/workload"
)

// ffCase is one point of the property sweep: a seeded config generator
// plus the (fast-forward-independent) run options it is executed with.
type ffCase struct {
	name string
	cfg  func(seed uint64) soc.Config
	opts soc.RunOptions
}

func ffCases() []ffCase {
	idleMMPP := func(seed uint64, numTasks int) workload.Spec {
		p := workload.DefaultMMPP(workload.NewSeed(seed), numTasks)
		p.QuietRate = 0.5
		p.MeanQuiet = 1600 * sim.Ms
		return workload.MMPPSpec(p)
	}
	return []ffCase{
		{name: "mmpp-dpm", cfg: func(seed uint64) soc.Config {
			return soc.Config{
				IPs:    []soc.IPSpec{{Name: "ip0", Gen: workload.MMPPSpec(workload.DefaultMMPP(workload.NewSeed(seed), 30))}},
				Policy: soc.PolicyDPM,
			}
		}},
		{name: "idle-mmpp-timeout-linear", cfg: func(seed uint64) soc.Config {
			return soc.Config{
				IPs:     []soc.IPSpec{{Name: "ip0", Gen: idleMMPP(seed, 24)}},
				Policy:  soc.PolicyTimeout,
				Battery: soc.BatteryConfig{Kind: "linear", CapacityJ: 20, InitialSoC: 0.9},
			}
		}},
		{name: "heavytail-closed-dpm", cfg: func(seed uint64) soc.Config {
			return soc.Config{
				IPs:    []soc.IPSpec{{Name: "ip0", Gen: workload.HeavyTailSpec(workload.DefaultHeavyTail(workload.NewSeed(seed), 30))}},
				Policy: soc.PolicyDPM,
			}
		}},
		{name: "periodic-greedy", cfg: func(seed uint64) soc.Config {
			return soc.Config{
				IPs:    []soc.IPSpec{{Name: "ip0", Gen: workload.PeriodicSpec(workload.DefaultPeriodic(workload.NewSeed(seed), 30))}},
				Policy: soc.PolicyGreedy,
			}
		}},
		{name: "burst-alwayson", cfg: func(seed uint64) soc.Config {
			return soc.Config{
				IPs:    []soc.IPSpec{{Name: "ip0", Gen: workload.BurstSpec(workload.DefaultBurst(int64(seed), 30))}},
				Policy: soc.PolicyAlwaysOn,
			}
		}},
		{name: "two-ip-gem", cfg: func(seed uint64) soc.Config {
			s := workload.NewSeed(seed)
			return soc.Config{
				IPs: []soc.IPSpec{
					{Name: "ht", Gen: workload.HeavyTailSpec(workload.DefaultHeavyTail(s.Split("ht"), 20))},
					{Name: "mm", Gen: workload.MMPPSpec(workload.DefaultMMPP(s.Split("mm"), 20))},
				},
				Policy: soc.PolicyDPM,
				UseGEM: true,
			}
		}},
		{name: "two-ip-gem-buslimited", cfg: func(seed uint64) soc.Config {
			// BusOccupancyLimit > 0 re-evaluates the GEM every tick, the
			// densest per-sample work the accountant can carry through a gap.
			s := workload.NewSeed(seed)
			return soc.Config{
				IPs: []soc.IPSpec{
					{Name: "ht", Gen: workload.HeavyTailSpec(workload.DefaultHeavyTail(s.Split("ht"), 20))},
					{Name: "mm", Gen: workload.MMPPSpec(workload.DefaultMMPP(s.Split("mm"), 20))},
				},
				Policy: soc.PolicyDPM,
				UseGEM: true,
				GEM:    gem.Config{BusOccupancyLimit: 0.4},
			}
		}},
		{name: "idle-mmpp-stop-on-soc", cfg: func(seed uint64) soc.Config {
			return soc.Config{
				IPs:     []soc.IPSpec{{Name: "ip0", Gen: idleMMPP(seed, 24)}},
				Policy:  soc.PolicyDPM,
				Battery: soc.DefaultBattery(0.95),
			}
		}, opts: soc.RunOptions{StopWhen: []soc.StopCondition{soc.StopOnSoC(0.93)}}},
		{name: "mains-dpm", cfg: func(seed uint64) soc.Config {
			b := soc.DefaultBattery(0.95)
			b.Mains = true
			return soc.Config{
				IPs:     []soc.IPSpec{{Name: "ip0", Gen: idleMMPP(seed, 24)}},
				Policy:  soc.PolicyDPM,
				Battery: b,
			}
		}},
	}
}

// TestFastForwardEquivalenceProperty runs every case over several seeds in
// both kernel modes and asserts the results are bit-identical: same
// energy, temperature, delta-cycle count (the scheduling checksum), stop
// reason and full result digest.
func TestFastForwardEquivalenceProperty(t *testing.T) {
	seeds := []uint64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, c := range ffCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				cfg := c.cfg(seed)
				ff, err := soc.RunWith(context.Background(), cfg, c.opts)
				if err != nil {
					t.Fatalf("seed %d fastforward: %v", seed, err)
				}
				tickedOpts := c.opts
				tickedOpts.NoFastForward = true
				tk, err := soc.RunWith(context.Background(), cfg, tickedOpts)
				if err != nil {
					t.Fatalf("seed %d ticked: %v", seed, err)
				}
				if ff.EnergyJ != tk.EnergyJ || ff.AvgTempC != tk.AvgTempC ||
					ff.PeakTempC != tk.PeakTempC || ff.Duration != tk.Duration ||
					ff.Deltas != tk.Deltas || ff.TasksDone != tk.TasksDone ||
					ff.FinalSoC != tk.FinalSoC || ff.StopReason != tk.StopReason {
					t.Errorf("seed %d: modes diverge:\n  fastforward EnergyJ=%v AvgTempC=%v Deltas=%d Duration=%d Tasks=%d SoC=%v Stop=%q\n  ticked      EnergyJ=%v AvgTempC=%v Deltas=%d Duration=%d Tasks=%d SoC=%v Stop=%q",
						seed,
						ff.EnergyJ, ff.AvgTempC, ff.Deltas, ff.Duration, ff.TasksDone, ff.FinalSoC, ff.StopReason,
						tk.EnergyJ, tk.AvgTempC, tk.Deltas, tk.Duration, tk.TasksDone, tk.FinalSoC, tk.StopReason)
				}
				if dff, dtk := engine.ResultDigest(ff), engine.ResultDigest(tk); dff != dtk {
					t.Errorf("seed %d: result digests diverge: fastforward %s, ticked %s", seed, dff, dtk)
				}
			}
		})
	}
}
