// Tournament: pit energy-management policies against each other across
// the generated scenario catalog — seeded stochastic workloads (bursty,
// Markov-modulated, periodic-with-jitter, heavy-tailed) crossed with
// replicate seeds — and print the ranked leaderboard with 95% confidence
// intervals and paired savings against the always-on baseline.
//
// Everything is reproducible bit for bit: the workload seeds fully
// determine every generated scenario, so rerunning this example always
// prints the identical leaderboard, and a rerun on the same engine is
// served entirely from the result cache.
package main

import (
	"context"
	"fmt"
	"log"

	"godpm"
)

func main() {
	// Entrants: the DPM architecture vs. three classical policies.
	all := godpm.StandardPolicies()
	byName := map[string]godpm.TournamentPolicy{}
	for _, p := range all {
		byName[p.Name] = p
	}

	// Scenarios: the built-in generator catalog, plus one custom scenario
	// assembled by hand — a two-IP SoC mixing an MMPP request source with
	// a heavy-tailed one.
	scenarios := godpm.ArenaScenarios(40)
	seed := godpm.NewSeed(0) // placeholder; the tournament reseeds per replicate
	scenarios = append(scenarios, godpm.TournamentScenario{
		Name: "mixed-2ip",
		Config: godpm.Config{
			IPs: []godpm.IPSpec{
				{Name: "net", Gen: godpm.MMPPGen(godpm.DefaultMMPP(seed, 40))},
				{Name: "dsp", Gen: godpm.HeavyTailGen(godpm.DefaultHeavyTail(seed, 40))},
			},
			Policy: godpm.PolicyDPM,
		},
	})

	tour := godpm.Tournament{
		Scenarios: scenarios,
		Policies: []godpm.TournamentPolicy{
			byName["alwayson"], byName["dpm"], byName["timeout"], byName["greedy"],
		},
		Seeds:    []godpm.WorkloadSeed{godpm.NewSeed(1), godpm.NewSeed(2), godpm.NewSeed(3), godpm.NewSeed(4), godpm.NewSeed(5)},
		Baseline: "alwayson",
		Deadline: 30 * godpm.Ms,
	}

	eng := godpm.NewEngine(godpm.EngineOptions{})
	res, err := godpm.RunTournament(context.Background(), eng, tour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.FormatLeaderboard())

	// A rerun of the same tournament on the same engine simulates nothing:
	// every job is content-addressed and cache-served.
	before := eng.Stats()
	if _, err := godpm.RunTournament(context.Background(), eng, tour); err != nil {
		log.Fatal(err)
	}
	after := eng.Stats()
	fmt.Printf("\nrerun: %d new simulations, %d cache hits — leaderboard reproduced from cache\n",
		after.Runs-before.Runs, after.Hits-before.Hits)
}
