// Battery-aware scaling: the same workload executed at different battery
// levels shows Table 1 in action — a full battery runs tasks at ON1/ON2, a
// low battery forces everyone to ON4 (4× slower, far less energy), and an
// empty battery parks all but very-high-priority tasks.
package main

import (
	"fmt"
	"log"
	"sort"

	"godpm/internal/core"
	"godpm/internal/sim"
	"godpm/internal/workload"
)

func main() {
	seq := workload.HighActivity(11, 40).MustGenerate()

	levels := []struct {
		name string
		soc  float64
	}{
		{"Full (95%)", 0.95},
		{"High (70%)", 0.70},
		{"Medium (45%)", 0.45},
		{"Low (20%)", 0.20},
	}

	fmt.Printf("%-14s %10s %14s %12s  %s\n", "battery", "energy J", "duration", "final SoC", "ON-state mix")
	for _, lv := range levels {
		cfg := core.Config{
			IPs:     []core.IPSpec{{Name: "cpu", Sequence: seq}},
			Policy:  core.PolicyDPM,
			Battery: core.DefaultBattery(lv.soc),
			Horizon: 60 * sim.Sec,
		}
		res, err := core.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10.4f %14v %12.3f  %s\n",
			lv.name, res.EnergyJ, res.Duration, res.FinalSoC,
			mixString(res.LEMStats["cpu"].OnDecisions))
	}
	fmt.Println("\nLower battery classes trade latency (slower ON states) for charge,")
	fmt.Println("exactly as Table 1 prescribes.")
}

func mixString(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s×%d ", k, m[k])
	}
	return out
}
