// Battery-aware scaling: the same workload executed at different battery
// levels shows Table 1 in action — a full battery runs tasks at ON1/ON2, a
// low battery forces everyone to ON4 (4× slower, far less energy), and an
// empty battery parks all but very-high-priority tasks. A final run-to-
// battery-death experiment uses RunWith's StopWhen conditions to measure
// lifetime directly instead of guessing a horizon.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"godpm"
)

func main() {
	seq := godpm.HighActivity(11, 40).MustGenerate()

	levels := []struct {
		name string
		soc  float64
	}{
		{"Full (95%)", 0.95},
		{"High (70%)", 0.70},
		{"Medium (45%)", 0.45},
		{"Low (20%)", 0.20},
	}

	fmt.Printf("%-14s %10s %14s %12s  %s\n", "battery", "energy J", "duration", "final SoC", "ON-state mix")
	for _, lv := range levels {
		cfg := godpm.Config{
			IPs:     []godpm.IPSpec{{Name: "cpu", Sequence: seq}},
			Policy:  godpm.PolicyDPM,
			Battery: godpm.DefaultBattery(lv.soc),
			Horizon: 60 * godpm.Sec,
		}
		res, err := godpm.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10.4f %14v %12.3f  %s\n",
			lv.name, res.EnergyJ, res.Duration, res.FinalSoC,
			mixString(res.LEMStats["cpu"].OnDecisions))
	}
	fmt.Println("\nLower battery classes trade latency (slower ON states) for charge,")
	fmt.Println("exactly as Table 1 prescribes.")

	// Run to battery death: loop the workload far past the horizon and let
	// a stop condition end the run the instant the battery class reaches
	// Empty — the lifetime experiment a fixed Horizon cannot express.
	long := godpm.HighActivity(11, 4000).MustGenerate()
	fmt.Println("\ntime to battery death (DPM vs always-on, 6% charge):")
	for _, policy := range []godpm.PolicyKind{godpm.PolicyAlwaysOn, godpm.PolicyDPM} {
		cfg := godpm.Config{
			IPs:     []godpm.IPSpec{{Name: "cpu", Sequence: long}},
			Policy:  policy,
			Battery: godpm.DefaultBattery(0.06),
			Horizon: 600 * godpm.Sec,
		}
		res, err := godpm.RunWith(context.Background(), cfg, godpm.RunOptions{
			StopWhen: []godpm.StopCondition{godpm.StopOnBatteryEmpty()},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s lived %14v, %4d tasks done (stop: %s)\n",
			policy, res.Duration, res.TasksDone, res.StopReason)
	}
}

func mixString(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s×%d ", k, m[k])
	}
	return out
}
