// Policy comparison: the paper's DPM architecture against the classic
// baselines — always-on, fixed-timeout, greedy sleep and the oracle — on
// the identical workload. The DPM policy is the only one that also scales
// the execution speed (voltage scaling), so it reaches savings the
// sleep-only policies cannot.
package main

import (
	"fmt"
	"log"

	"godpm/internal/core"
	"godpm/internal/stats"
	"godpm/internal/workload"
)

func main() {
	seq := workload.LowActivity(3, 40).MustGenerate() // idle-heavy: sleeping matters

	policies := []core.Config{
		{Policy: core.PolicyAlwaysOn},
		{Policy: core.PolicyGreedy},
		{Policy: core.PolicyTimeout},
		{Policy: core.PolicyOracle},
		{Policy: core.PolicyDPM},
	}

	var baseline *core.Result
	fmt.Printf("%-10s %12s %14s %16s %18s\n", "policy", "energy J", "duration", "saving vs base", "delay vs base")
	for _, cfg := range policies {
		cfg.IPs = []core.IPSpec{{Name: "cpu", Sequence: seq}}
		cfg.Battery = core.DefaultBattery(0.45) // Medium: priorities spread the ON states
		res, err := core.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if cfg.Policy == core.PolicyAlwaysOn {
			baseline = res
			fmt.Printf("%-10s %12.4f %14v %16s %18s\n", cfg.Policy, res.EnergyJ, res.Duration, "—", "—")
			continue
		}
		saving, err := stats.EnergySavingPct(baseline.EnergyJ, res.EnergyJ)
		if err != nil {
			log.Fatal(err)
		}
		delay, err := stats.DelayOverheadPct(baseline.Ledger, res.Ledger)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.4f %14v %15.1f%% %17.1f%%\n",
			cfg.Policy, res.EnergyJ, res.Duration, saving, delay)
	}
}
