// Policy comparison: the paper's DPM architecture against the classic
// baselines — always-on, fixed-timeout, greedy sleep and the oracle — on
// the identical workload. The DPM policy is the only one that also scales
// the execution speed (voltage scaling), so it reaches savings the
// sleep-only policies cannot.
package main

import (
	"fmt"
	"log"

	"godpm"
)

func main() {
	seq := godpm.LowActivity(3, 40).MustGenerate() // idle-heavy: sleeping matters

	policies := []godpm.Config{
		{Policy: godpm.PolicyAlwaysOn},
		{Policy: godpm.PolicyGreedy},
		{Policy: godpm.PolicyTimeout},
		{Policy: godpm.PolicyOracle},
		{Policy: godpm.PolicyDPM},
	}

	var baseline *godpm.Result
	fmt.Printf("%-10s %12s %14s %16s %18s\n", "policy", "energy J", "duration", "saving vs base", "delay vs base")
	for _, cfg := range policies {
		cfg.IPs = []godpm.IPSpec{{Name: "cpu", Sequence: seq}}
		cfg.Battery = godpm.DefaultBattery(0.45) // Medium: priorities spread the ON states
		res, err := godpm.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if cfg.Policy == godpm.PolicyAlwaysOn {
			baseline = res
			fmt.Printf("%-10s %12.4f %14v %16s %18s\n", cfg.Policy, res.EnergyJ, res.Duration, "—", "—")
			continue
		}
		saving, err := godpm.EnergySavingPct(baseline.EnergyJ, res.EnergyJ)
		if err != nil {
			log.Fatal(err)
		}
		delay, err := godpm.DelayOverheadPct(baseline.Ledger, res.Ledger)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.4f %14v %15.1f%% %17.1f%%\n",
			cfg.Policy, res.EnergyJ, res.Duration, saving, delay)
	}
}
