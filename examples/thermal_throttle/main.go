// Thermal throttling: a four-IP SoC under the GEM starts with an overheated
// die. The GEM disables every IP and switches the supplementary fan on; as
// the die cools through the class thresholds the IPs are re-enabled and the
// LEMs pick speeds that keep the temperature in check — the paper's "DPM
// algorithm is very efficient in the control of chip temperature".
package main

import (
	"fmt"
	"log"

	"godpm"
)

func main() {
	var specs []godpm.IPSpec
	for i := 0; i < 4; i++ {
		specs = append(specs, godpm.IPSpec{
			Name:           fmt.Sprintf("ip%d", i+1),
			Sequence:       godpm.HighActivity(int64(i+1), 30).MustGenerate(),
			StaticPriority: i + 1,
		})
	}

	run := func(initialTempC float64, label string) {
		cfg := godpm.Config{
			IPs:          specs,
			Policy:       godpm.PolicyDPM,
			UseGEM:       true,
			Battery:      godpm.DefaultBattery(0.95),
			InitialTempC: initialTempC,
			Horizon:      120 * godpm.Sec,
		}
		res, err := godpm.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		parks := 0
		for _, st := range res.LEMStats {
			parks += st.ParkEvents
		}
		fmt.Printf("%-22s avg %.1f°C  peak %.1f°C  %.4f J  %v  parks=%d  fanSwitches=%d\n",
			label, res.AvgTempC, res.PeakTempC, res.EnergyJ, res.Duration, parks, res.FanSwitches)
	}

	fmt.Println("DPM with GEM, four IPs, battery Full:")
	run(50, "cool start (50°C)")
	run(95, "hot start (95°C)")

	// Contrast: the baseline has no thermal control at all.
	base := godpm.Config{
		IPs:          specs,
		Policy:       godpm.PolicyAlwaysOn,
		Battery:      godpm.DefaultBattery(0.95),
		InitialTempC: 95,
		Horizon:      120 * godpm.Sec,
	}
	res, err := godpm.Run(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s avg %.1f°C  peak %.1f°C  %.4f J  %v\n",
		"baseline, hot start", res.AvgTempC, res.PeakTempC, res.EnergyJ, res.Duration)
	fmt.Println("\nThe DPM run holds the die near the class thresholds; the baseline")
	fmt.Println("just keeps heating under load.")
}
