// Open-loop traffic: service requests arrive on their own schedule whether
// or not the IP is ready (the paper's IPs execute tasks "on the basis of
// some external service requests"). When the DPM policy slows the core
// down, requests queue up and service times grow — this example sweeps the
// offered load and shows where the DPM-managed IP saturates while the
// always-on IP still keeps up.
package main

import (
	"fmt"
	"log"

	"godpm"
)

func main() {
	fmt.Printf("%-14s %-10s %12s %14s %14s\n",
		"inter-arrival", "policy", "energy J", "avg service", "max service")
	for _, gapMs := range []float64{120, 60, 30, 10} {
		for _, policy := range []godpm.Config{{Policy: godpm.PolicyAlwaysOn}, {Policy: godpm.PolicyDPM}} {
			p := godpm.HighActivity(21, 40)
			p.MeanIdle = godpm.Time(gapMs * float64(godpm.Ms))
			arrivals := p.MustGenerateArrivals(200e6)

			cfg := policy
			cfg.IPs = []godpm.IPSpec{{Name: "cpu", Arrivals: arrivals}}
			cfg.Battery = godpm.DefaultBattery(0.25) // Low: DPM runs at ON4
			cfg.Horizon = 60 * godpm.Sec
			res, err := godpm.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			var sum, max godpm.Time
			for _, r := range res.Ledger.Records() {
				s := r.Service()
				sum += s
				if s > max {
					max = s
				}
			}
			avg := sum / godpm.Time(res.Ledger.Len())
			fmt.Printf("%-14s %-10s %12.4f %14v %14v\n",
				godpm.Time(gapMs*float64(godpm.Ms)), cfg.Policy, res.EnergyJ, avg, max)
		}
	}
	fmt.Println("\nAt light load the ON4-throttled DPM core keeps up cheaply; as the")
	fmt.Println("inter-arrival gap shrinks below the 4×-slower execution time, its")
	fmt.Println("queue grows without bound while the always-on core still copes.")
}
