// Quickstart: assemble a single-IP SoC with the paper's DPM architecture
// (PSM + LEM over battery and temperature classes), run a generated
// workload, and compare it against the always-on baseline.
package main

import (
	"fmt"
	"log"

	"godpm"
)

func main() {
	// A traffic-generator workload: 50 tasks, busy roughly half the time,
	// with mixed instruction classes and priorities.
	seq := godpm.HighActivity(7, 50).MustGenerate()

	cfg := godpm.Config{
		IPs:      []godpm.IPSpec{{Name: "cpu", Sequence: seq}},
		Policy:   godpm.PolicyDPM,
		Battery:  godpm.DefaultBattery(0.95), // battery Full
		BusWords: 32,
	}
	dpm, err := godpm.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	cfg.Policy = godpm.PolicyAlwaysOn
	base, err := godpm.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %d tasks, %d instructions total\n",
		len(seq), seq.TotalInstructions())
	fmt.Printf("baseline (always ON1): %.4f J in %v, avg %.1f°C\n",
		base.EnergyJ, base.Duration, base.AvgTempC)
	fmt.Printf("DPM:                   %.4f J in %v, avg %.1f°C\n",
		dpm.EnergyJ, dpm.Duration, dpm.AvgTempC)
	fmt.Printf("energy saving: %.1f%%\n", 100*(base.EnergyJ-dpm.EnergyJ)/base.EnergyJ)

	st := dpm.LEMStats["cpu"]
	fmt.Printf("LEM decisions: %v\n", st.OnDecisions)
	fmt.Printf("sleep entries: %v\n", st.SleepEntries)
}
