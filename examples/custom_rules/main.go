// Custom rules: the LEM policy is data, not code. This example writes an
// aggressive battery-saver policy in the paper's natural-language rule form,
// parses it, and runs the same workload under both the paper's Table 1 and
// the custom table.
package main

import (
	"fmt"
	"log"

	"godpm"
)

// A policy that prioritises battery life over speed: nothing ever runs
// faster than ON2, and any battery below Medium forces the floor ON4.
const batterySaver = `
# aggressive battery-saver policy
if the temperature is high then SL1
if the battery is empty or low then ON4
if the battery is medium then ON3
if the priority is veryhigh then ON2
if the battery is mains then ON2
default ON3
`

func main() {
	table, err := godpm.ParseRules(batterySaver)
	if err != nil {
		log.Fatal(err)
	}
	if !table.Total() {
		log.Fatal("custom policy does not decide every input")
	}
	fmt.Println("custom policy:")
	fmt.Print(table.Format())

	seq := godpm.HighActivity(5, 40).MustGenerate()
	run := func(label string, opts godpm.LEMOptions) {
		cfg := godpm.Config{
			IPs:     []godpm.IPSpec{{Name: "cpu", Sequence: seq}},
			Policy:  godpm.PolicyDPM,
			LEM:     opts,
			Battery: godpm.DefaultBattery(0.95),
		}
		res, err := godpm.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %.4f J in %v, final SoC %.4f, mix %v\n",
			label, res.EnergyJ, res.Duration, res.FinalSoC,
			res.LEMStats["cpu"].OnDecisions)
	}

	fmt.Println()
	run("paper Table 1", godpm.LEMOptions{})
	run("battery saver", godpm.LEMOptions{Table: table})
}
